(** The quantitative experiments (E1–E28 of DESIGN.md).

    Each function is deterministic given its arguments, returns typed
    rows, and has a [pp_*]/[print_*] companion. [bench/main.ml] runs
    them all; [bin/evolvenet] runs them individually. The expected
    shapes (who wins, what grows, where the crossover is) are asserted
    in test/test_experiments.ml and recorded in EXPERIMENTS.md. *)

(** {1 E1 — anycast stretch vs deployment fraction (Fig 1 generalized)} *)

type e1_row = {
  fraction : float;  (** fraction of domains that deployed IPvN *)
  deployed_domains : int;
  mean_stretch : float;
  p95_stretch : float;
  delivery_rate : float;
}

val e1_deployment_sweep :
  ?params:Topology.Internet.params ->
  ?fractions:float list ->
  unit ->
  e1_row list
(** Deployment spreads over a fixed random internet (deployed sets are
    nested as the fraction grows, like the figure's staged story);
    stretch is measured over all endhosts. *)

val print_e1 : e1_row list -> unit

(** {1 E2 — Option 2 default routes vs peering advertisements (Fig 2
    generalized)} *)

type e2_row = {
  label : string;
  advertisers : int;  (** participants that advertised to their neighbors *)
  default_share : float;  (** traffic terminating at the default domain *)
  mean_stretch2 : float;
  delivery2 : float;
}

val e2_default_route_sweep :
  ?params:Topology.Internet.params ->
  ?participants:int ->
  unit ->
  e2_row list
(** Fixed participant set (default domain + stubs); progressively more
    participants advertise the anycast route to all their neighbors.
    The last row is the same deployment under Option 1 for reference. *)

val print_e2 : e2_row list -> unit

(** {1 E3/E4 — egress strategies (Figs 3 and 4 generalized)} *)

type strategy_row = {
  strategy_name : string;
  mean_vn_fraction : float;
  mean_vn_hops : float;
  mean_exposure_hops : float;  (** hops outside the vN-Bone *)
  mean_total_hops : float;
  journey_delivery : float;
}

val e3_egress_comparison :
  ?params:Topology.Internet.params ->
  ?deploy_fraction:float ->
  ?pairs:int ->
  unit ->
  strategy_row list
(** All three strategies over random endhost pairs whose destination
    lives in a non-IPvN domain. *)

val print_e3 : strategy_row list -> unit
val print_e4 : strategy_row list -> unit

(** {1 E5 — routing state: Option 1 vs Option 2} *)

type e5_row = {
  generations : int;  (** concurrent IPvN deployments *)
  opt1_mean_rib : float;
  opt1_max_rib : int;
  opt2_mean_rib : float;
  opt2_max_rib : int;
  baseline_rib : int;  (** unicast-only RIB size *)
}

val e5_state_scaling :
  ?params:Topology.Internet.params ->
  ?max_generations:int ->
  ?domains_per_generation:int ->
  unit ->
  e5_row list

val print_e5 : e5_row list -> unit

(** {1 E6 — adoption dynamics: universal access on/off} *)

type e6_row = {
  scenario : string;
  universal_access : bool;
  final_isp_fraction : float;
  final_app_fraction : float;
  tip_step : int option;  (** step where adoption crossed 90% *)
}

val e6_adoption :
  ?seeds:int64 list -> ?base:Adoption.params -> unit -> e6_row list
(** UA on vs off, averaged over the seeds. *)

val print_e6 : e6_row list -> unit

(** {1 E7 — vN-Bone robustness under member failures}

    The paper claims vN-Bone partitions are "easily detected and
    repaired"; after any rebuild the anchoring rule indeed restores
    connectivity (asserted in the tests). The interesting quantities
    are how well the built fabric {e survives} failures before repair —
    as a function of the k-closest neighbor count — and how many repair
    tunnels a rebuild then needs. *)

type e7_row = {
  failure_fraction : float;
  survive_k1 : float;  (** fraction of trials still connected, k = 1 *)
  survive_k2 : float;
  survive_k3 : float;
  mean_repair_tunnels : float;
      (** new tunnels a rebuild adds after the failure (k = 2) *)
  trials : int;
}

val e7_robustness :
  ?params:Topology.Internet.params ->
  ?deploy_domains:int ->
  ?trials:int ->
  ?failure_fractions:float list ->
  unit ->
  e7_row list

val print_e7 : e7_row list -> unit

(** {1 E8 — LS vs DV anycast convergence} *)

type e8_row = {
  domain_routers : int;
  ls_mean_rounds : float;  (** LSA flooding rounds after a membership change *)
  dv_join_rounds : float;  (** DV rounds to re-converge after a join *)
  dv_leave_rounds : float;
}

val e8_convergence : ?sizes:int list -> ?seed:int64 -> unit -> e8_row list
val print_e8 : e8_row list -> unit

(** {1 E9 — host-advertised routes: optimality vs fate-sharing}

    The paper's §3.3.2 alternative (endhosts register their temporary
    address with a nearby IPvN router) gives the best exits but
    introduces "a form of fate-sharing between an endhost and its
    route advertisement". We measure both sides: exposure with fresh
    registrations, and delivery once a fraction of members fail without
    the hosts re-registering. *)

type e9_row = {
  member_failure : float;  (** fraction of members that left *)
  host_adv_delivery : float;  (** stale registrations black-hole *)
  proxy_delivery : float;  (** proxy re-routes around the loss *)
  host_adv_exposure : float;  (** mean off-vN-Bone hops when delivered *)
  proxy_exposure : float;
}

val e9_host_advertised :
  ?params:Topology.Internet.params ->
  ?deploy_fraction:float ->
  ?pairs:int ->
  ?failures:float list ->
  unit ->
  e9_row list

val print_e9 : e9_row list -> unit

(** {1 E10 — vN-Bone discovery: LSDB vs anycast-walk (footnote 2)} *)

type e10_row = {
  discovery_name : string;
  intra_tunnels : int;
  vn_stretch : float;  (** mean vN path / direct underlay, member pairs *)
  connected10 : bool;
}

val e10_discovery_ablation :
  ?params:Topology.Internet.params -> ?deploy_domains:int -> unit -> e10_row list

val print_e10 : e10_row list -> unit

(** {1 E11 — congruence with the physical topology (§3.3.1)}

    "As deployment spreads, the vN-Bone topology should evolve to be
    congruent with the underlying physical topology": the vN stretch
    over member pairs should fall toward 1 as more domains (and their
    direct business links) join. *)

type e11_row = {
  deploy_fraction11 : float;
  members11 : int;
  vn_stretch11 : float;
  inter_tunnels11 : int;
}

val e11_congruence :
  ?params:Topology.Internet.params -> ?fractions:float list -> unit -> e11_row list

val print_e11 : e11_row list -> unit

(** {1 E12 — GIA search radius (§3.2, Katabi et al.)}

    GIA interpolates between the paper's two options: the home domain
    guarantees delivery (Option 2's property) while radius-limited
    member advertisements recover Option 1's proximity, paying routing
    state only within the radius. *)

type e12_row = {
  scheme12 : string;
  gia_radius : int option;
  home_share : float;  (** terminations at the home domain *)
  mean_stretch12 : float;
  delivery12 : float;
  mean_rib12 : float;  (** mean per-domain RIB size (state cost) *)
}

val e12_gia_sweep :
  ?params:Topology.Internet.params ->
  ?participants:int ->
  ?radii:int list ->
  unit ->
  e12_row list

val print_e12 : e12_row list -> unit

(** {1 E13 — seed stability of the egress comparison}

    E3's ordering must not be an artifact of one random internet: the
    same comparison across independent topologies, with Student-t 95%
    confidence intervals. *)

type e13_row = {
  strategy13 : string;
  vn_fraction_ci : Stats.summary;
  exposure_ci : Stats.summary;
  delivery_ci : Stats.summary;
  seeds13 : int;
}

val e13_seed_stability :
  ?seeds:int64 list ->
  ?deploy_fraction:float ->
  ?pairs:int ->
  unit ->
  e13_row list

val print_e13 : e13_row list -> unit

(** {1 E14 — proxy-metric ablation}

    Advertising-by-proxy routes on [alpha * vN_hops + AS_hops]. The
    sweep shows the design knob: [alpha >= 1] collapses proxy into
    exit-early (a vN detour can never beat the triangle inequality),
    while small [alpha] buys vN-Bone coverage with extra total hops. *)

type e14_row = {
  alpha : float;
  alpha_vn_fraction : float;
  alpha_exposure : float;
  alpha_total_hops : float;
}

val e14_proxy_alpha :
  ?params:Topology.Internet.params ->
  ?deploy_fraction:float ->
  ?pairs:int ->
  ?alphas:float list ->
  unit ->
  e14_row list

val print_e14 : e14_row list -> unit

(** {1 E15 — where the chicken-and-egg bites}

    Sweeping the app-viability floor (the user share below which
    developers ignore the new IP): universal access is insensitive to
    it, while gated access collapses as soon as the floor exceeds the
    early adopters' market share. *)

type e15_row = {
  viability : float;
  ua_final : float;
  gated_final : float;
}

val e15_viability_sweep :
  ?seeds:int64 list -> ?thresholds:float list -> unit -> e15_row list

val print_e15 : e15_row list -> unit

(** {1 E16 — traffic attraction under gravity workloads (A4)}

    "An ISP that attracts new traffic, by offering IPvN, will also
    gain revenue": under a Zipf-gravity workload, deploying domains
    carry a share of IPvN traffic that exceeds their population share —
    strongly so for small deployers, since all anycast and vN-Bone
    traffic funnels through them. *)

type e16_row = {
  picker : string;
  pop_share : float;
  traffic_share : float;
  attraction_premium : float;
}

val e16_revenue_gravity :
  ?params:Topology.Internet.params ->
  ?deployers:int ->
  ?flows:int ->
  unit ->
  e16_row list

val print_e16 : e16_row list -> unit

(** {1 E17 — BGPvN convergence and state}

    The distributed vN routing protocol's cost: exchange rounds to the
    fixpoint and per-member table size as the deployment grows. Tables
    hold one aggregate per participant domain — the "design space ...
    fairly unconstrained" routing the paper leaves open, made
    concrete. *)

type e17_row = {
  vn_domains : int;
  vn_members : int;
  bgpvn_rounds : int;
  mean_table : float;
}

val e17_bgpvn_scaling :
  ?params:Topology.Internet.params ->
  ?domain_counts:int list ->
  unit ->
  e17_row list

val print_e17 : e17_row list -> unit

(** {1 E18 — message-level LSA flooding}

    The dynamics beneath E8's round counts: actual LSA transmissions
    and settle latency on the event engine, for the initial LSDB sync
    and for one anycast-membership update, vs domain size. *)

type e18_row = {
  ls_routers : int;
  sync_messages : int;
  update_messages : int;
  update_latency : float;
  eccentricity : int;
}

val e18_flooding_cost : ?sizes:int list -> ?seed:int64 -> unit -> e18_row list
val print_e18 : e18_row list -> unit

(** {1 E19 — asynchronous BGP dynamics}

    What injecting a new (anycast) prefix actually costs on the wire:
    update messages, transient best-route churn, and time to
    quiescence, as a function of the MRAI rate limit. The converged
    state is proven identical to the synchronous engine's by the
    test-suite. *)

type e19_row = {
  mrai : float;
  boot_updates : int;
  boot_time : float;
  anycast_updates : int;
  anycast_time : float;
  churn : int;
}

val e19_mrai_sweep :
  ?params:Topology.Internet.params -> ?mrais:float list -> unit -> e19_row list

val print_e19 : e19_row list -> unit

(** {1 E20 — anycast as a resilience mechanism}

    RFC 1546's original use case (and the root-DNS deployment the
    paper cites): with anycast, the service survives member loss as
    long as any member is left, while a single-address service dies
    with its host. This is also why universal access is robust during
    evolution. *)

type e20_row = {
  dead_members : int;
  anycast_delivery : float;
  unicast_delivery : float;
}

val e20_anycast_resilience :
  ?params:Topology.Internet.params ->
  ?deploy_domains:int ->
  ?kill_steps:int list ->
  unit ->
  e20_row list

val print_e20 : e20_row list -> unit

(** {1 E21 — behaviour and cost vs internet size}

    Sanity that the reproduction's claims are not an artifact of one
    scale: delivery and stretch stay put while the internet grows, and
    simulation cost grows politely. *)

type e21_row = {
  domains21 : int;
  routers21 : int;
  bgp_rounds : int;
  mean_stretch21 : float;
  delivery21 : float;
  total_rib : int;
      (** summed per-domain RIB entries — a deterministic cost measure
          (wall-clock timing lives in bench/, never in experiment rows) *)
}

val e21_size_scaling : ?transit_counts:int list -> unit -> e21_row list
val print_e21 : e21_row list -> unit

(** {1 E22 — data-plane state: compiled FIB sizes}

    E5 counts BGP RIB prefixes; this is the line-card view: compiled
    longest-prefix-match tables per router, as concurrent IPvN
    generations accumulate under each inter-domain option. *)

type e22_row = {
  generations22 : int;
  opt1_mean_fib : float;
  opt1_max_fib : int;
  opt2_mean_fib : float;
  opt2_max_fib : int;
}

val e22_fib_scaling :
  ?params:Topology.Internet.params ->
  ?max_generations:int ->
  ?domains_per_generation:int ->
  unit ->
  e22_row list

val print_e22 : e22_row list -> unit

(** {1 E23 — topology-model robustness}

    The headline claims (universal access, modest stretch, exposure
    reduction from BGPv(N-1)-aware egress) re-measured on a
    preferential-attachment internet with a heavy-tailed provider
    degree distribution, alongside the default transit-stub model. *)

type e23_row = {
  model : string;
  domains23 : int;
  delivery23 : float;
  stretch23 : float;
  exposure_drop : float;
}

val e23_topology_robustness : ?pairs:int -> unit -> e23_row list
val print_e23 : e23_row list -> unit

(** {1 E24 — anycast flow stability under deployment churn}

    A limitation the paper leaves implicit: anycast may re-redirect a
    client mid-flow whenever deployment (or routing) changes, which
    breaks connection-oriented transports pinned to one IPvN ingress.
    We measure how often a client's ingress actually moves as
    deployment spreads — the price of seamlessness. *)

type e24_row = {
  stage : int;
  ingress_changed : float;
  cumulative_stability : float;
}

val e24_flow_stability :
  ?params:Topology.Internet.params -> ?stages:int -> unit -> e24_row list

val print_e24 : e24_row list -> unit

(** {1 E25 — acting in concert}

    The paper's diagnosis of the impasse: "since they all have to act
    in concert, there is no competitive advantage". Without universal
    access, how many of the largest ISPs must deploy {e together}
    before the market tips? With it, one suffices. *)

type e25_row = {
  coalition : int;
  coalition_share : float;
  gated_final25 : float;
  ua_final25 : float;
}

val e25_coalition_sweep :
  ?seeds:int64 list -> ?coalitions:int list -> unit -> e25_row list

val print_e25 : e25_row list -> unit

(** {1 E26 — the byte cost of evolution}

    Universal access rides on encapsulation and vN-Bone detours: both
    cost bytes. Using the wire format, the mean bytes-times-hops of
    evolved IPvN journeys vs native IPv4 delivery of the same flows,
    by payload size — small datagrams pay the headers, large ones the
    detours. *)

type e26_row = {
  payload_bytes : int;
  native_bytes : float;
  evolved_bytes : float;
  byte_overhead : float;
  header_share : float;
}

val e26_encapsulation_overhead :
  ?params:Topology.Internet.params ->
  ?deploy_fraction:float ->
  ?pairs:int ->
  ?payloads:int list ->
  unit ->
  e26_row list

val print_e26 : e26_row list -> unit

(** {1 E27 — heterogeneous IGPs end to end}

    Footnote 2 made operational: some domains run unmodified
    distance-vector, so their IPvN routers cannot enumerate each other
    and their vN-Bone islands self-assemble by anycast walk instead of
    the LSDB rule. Universal access must not care; the vN-Bone pays a
    stretch penalty proportional to the DV share. *)

type e27_row = {
  dv_fraction : float;
  delivery27 : float;
  stretch27 : float;
  walk_domains : int;
  vn_stretch27 : float;
}

val e27_mixed_igp :
  ?params:Topology.Internet.params ->
  ?dv_fractions:float list ->
  ?deploy_domains:int ->
  unit ->
  e27_row list

val print_e27 : e27_row list -> unit

(** {1 E28 — the cost of leaving}

    Evolution also means withdrawals: a participant ISP can stop
    offering IPvN. Retiring the route triggers BGP path hunting —
    routers flip to soon-to-die alternatives before conceding — so
    withdrawal churns more best-route changes than the original
    announcement. MRAI batching keeps most of those doomed flips off
    the wire, which the message columns show. *)

type e28_row = {
  mrai28 : float;
  announce_updates : int;
  announce_churn : int;
  withdraw_updates : int;
  withdraw_churn : int;
  hunt_ratio : float;
}

val e28_path_hunting :
  ?params:Topology.Internet.params -> ?mrais:float list -> unit -> e28_row list

val print_e28 : e28_row list -> unit

(** {1 E29 — the data-plane cost of evolution}

    The architectural bill measured where it is paid: gravity-model
    flow batches pushed through compiled FIB snapshots with per-router
    flow caches ({!Dataplane.Pump}), native IPv4 vs the encapsulated
    IPvN journey, as deployment sweeps 0 to 100% under Option 1 and
    Option 2. Delivery, hop stretch (mean and p99) and wire-byte
    overhead all converge toward native as deployment completes. *)

type e29_row = {
  option29 : string;
  fraction29 : float;
  delivery29 : float;
  mean_stretch29 : float;
  p99_stretch29 : float;
  byte_overhead29 : float;
  cache_hit29 : float;
}

val e29_dataplane_cost :
  ?params:Topology.Internet.params ->
  ?fractions:float list ->
  ?flows:int ->
  unit ->
  e29_row list

val print_e29 : e29_row list -> unit

(** {1 E30 — traffic during churn}

    FIB snapshots are not updated atomically: after a vN-Bone
    membership change the control plane moves on while line cards
    refresh in batches across a convergence window. Anycast probes
    injected every engine tick show the transient — packets still
    accepted by the ex-member (stale), dropped, or caught in
    mixed-table loops until every router runs the new snapshot. *)

type e30_row = {
  tick30 : int;
  phase30 : string;
  fresh30 : float;
  ok30 : float;
  stale30 : float;
  lost30 : float;
  looped30 : float;
}

val e30_churn_traffic :
  ?params:Topology.Internet.params ->
  ?deploy_domains:int ->
  ?probes:int ->
  ?ticks:int ->
  ?churn_tick:int ->
  ?window:int ->
  unit ->
  e30_row list

val print_e30 : e30_row list -> unit

(** {1 E31 — control-plane convergence under faults}

    The distributed protocols only earn the paper's resilience claims
    (§2.2 "naturally lends itself to fault tolerance", §3.3 "easily
    detected and repaired") if they reconverge to the correct state
    after running over an unreliable fabric. Each scenario runs
    {!Simcore.Bgpdyn} (keepalive/hold sessions) or {!Simcore.Lsproto}
    (acked flooding with retransmit backoff) under message loss, extra
    delay and router crash/restart from {!Simcore.Faults}, ceases
    injection, drains the engine, and checks the final state against
    the centralized oracle ({!Interdomain.Bgp} / {!Routing.Linkstate}),
    counting the robustness overhead spent to get there. *)

type e31_row = {
  proto31 : string;  (** "bgp" | "ls" *)
  loss31 : float;  (** per-message drop probability while injecting *)
  crashed31 : int;  (** nodes crashed and restarted mid-run *)
  msgs31 : int;  (** protocol messages (updates / LSA transmissions) *)
  overhead31 : int;  (** robustness tax: keepalives+resets / acks+retx *)
  settle31 : float;  (** engine time from fault cease to last change *)
  agrees31 : bool;  (** final state equals the centralized oracle *)
}

val e31_fault_convergence :
  ?params:Topology.Internet.params ->
  ?losses:float list ->
  ?crash_loss:float ->
  ?crash_frac:float ->
  unit ->
  e31_row list

val print_e31 : e31_row list -> unit

(** {1 E32 — traffic delivery while links flap}

    E30's accounting, under link failures instead of membership churn:
    anycast probes pumped every tick over compiled FIB snapshots while
    scripted flaps take links on live probe paths down and back up.
    With recovery off the stale FIBs keep forwarding into the dead
    link for the whole outage; with recovery on the control plane
    reroutes on detection and line cards install the detour in batches
    across a refresh window. *)

type e32_row = {
  tick32 : int;
  recovery32 : bool;  (** control plane reroutes around the down links *)
  phase32 : string;  (** steady | flapping | healing | recovered *)
  ok32 : float;  (** probes accepted by a current member *)
  stale32 : float;  (** probes accepted elsewhere *)
  lost32 : float;  (** dropped: link down / no route / stuck *)
  looped32 : float;  (** TTL expiry *)
}

val e32_flap_traffic :
  ?params:Topology.Internet.params ->
  ?deploy_domains:int ->
  ?probes:int ->
  ?ticks:int ->
  ?flap_links:int ->
  unit ->
  e32_row list

val print_e32 : e32_row list -> unit

(** {1 E33 — shard-count invariance of the multicore data plane}

    The determinism claim behind DESIGN.md §11: shard the packet pump
    across OCaml 5 domains ({!Multicore.Domainpool}) and the delivery
    verdicts must not move. One gravity-model batch is forwarded to a
    terminal verdict at every shard count on the same seed; everything
    order-dependent is shard-private and everything shared is
    read-only or commutative, so packets, bytes, delivered, dropped
    and TTL-expired counts are byte-identical from one shard to
    eight. Crossings counts the ring handoffs — the work parallelism
    adds — and is itself deterministic because the shard map is fixed
    by router id, not by load. *)

type e33_row = {
  shards33 : int;
  packets33 : int;  (** packets injected = terminal verdicts *)
  hops33 : int;  (** per-hop handlings, summed over routers *)
  bytes33 : int;  (** wire bytes handled *)
  delivered33 : int;
  dropped33 : int;
  ttl33 : int;
  crossings33 : int;  (** cross-shard ring handoffs *)
  identical33 : bool;  (** verdict counts equal the one-shard run's *)
}

val e33_shard_invariance :
  ?params:Topology.Internet.params ->
  ?shard_counts:int list ->
  ?flows:int ->
  ?packets_per_flow:int ->
  unit ->
  e33_row list

val print_e33 : e33_row list -> unit

(** {1 E34 — incident-drill catalog sweep}

    ROADMAP item 4 made replayable: every {!Ops.Drillbook.catalog}
    scenario (regional blackout, provider de-peering, prefix hijack,
    flapping provider) is replayed at increasing fault intensity and
    graded by {!Ops.Slo} — recovery metrics as data instead of
    anecdote. At intensity 1 every catalog drill must meet its
    declared SLO budgets (asserted in the test-suite); higher
    intensity shows where the §2.2/§3.3 resilience story starts to
    fray. *)

type e34_row = {
  drill34 : string;
  intensity34 : float;
  detection34 : float option;  (** seconds from onset; [None]: never *)
  reconverge34 : float option;
  blackhole34 : float;  (** lost-probe seconds over the drill *)
  stale34 : float;
  pass34 : bool;  (** the book's SLO budgets all held *)
}

val e34_drill_catalog :
  ?params:Topology.Internet.params ->
  ?intensities:float list ->
  unit ->
  e34_row list

val print_e34 : e34_row list -> unit

(** {1 E35 — hijack containment vs deployment level}

    The flip side of §3.2's Option-1 anycast: any domain can originate
    the IPvN anycast prefix, including a rogue one. Containment is
    structural — the more domains deploy (originate), the shorter the
    honest AS paths and the less traffic the rogue attracts. The
    prefix-hijack drill is replayed at increasing deployment levels;
    delivery-to-rogue must fall as deployment grows (asserted on the
    sweep's endpoints in the test-suite). *)

type e35_row = {
  deploy35 : int;  (** deployed domains during the hijack *)
  hijacked_peak35 : float;  (** worst single-tick delivery-to-rogue *)
  hijacked_mean35 : float;  (** mean over the fault window *)
  ok_fault35 : float;  (** mean on-target delivery during the fault *)
  reconverge35 : float option;
}

val e35_hijack_containment :
  ?params:Topology.Internet.params ->
  ?levels:int list ->
  unit ->
  e35_row list

val print_e35 : e35_row list -> unit

(** {1 E36 — overload response of the finite-queue data plane}

    Overload hardening made measurable (DESIGN.md §13): every link
    carries a finite {!Dataplane.Linkq} — the §3.3.2 indirection tax
    ("the cost of this indirection is processing ... and increased
    latency") turned into queueing delay and loss — and offered load
    sweeps from idle to several times the drain rate. Goodput rises to
    saturation then plateaus while queueing delay and deliberate
    shedding absorb the excess: graceful degradation, not a cliff.
    Control probes injected at the peak of every tick's crowd ride the
    [control_reserve] and must keep flowing — control is never shed
    before data. The delivered fraction is monotonically non-increasing
    in offered load and no queue ever exceeds its configured depth
    (both asserted in the test-suite). *)

type e36_row = {
  load36 : int;  (** offered data packets per tick *)
  offered36 : int;  (** packets offered over the run, data + control *)
  goodput36 : int;  (** data packets delivered *)
  goodput_frac36 : float;  (** goodput over offered data *)
  ctrl_ok36 : float;  (** control delivery fraction (the reserve at work) *)
  qdrop36 : int;  (** droptail losses at full queues *)
  shed36 : int;  (** class-precedence sheds of data packets *)
  delay36 : float;  (** mean queueing delay of admitted packets, ticks *)
  queued_hw36 : int;  (** max bytes any one queue ever held *)
  bounded36 : bool;  (** [queued_hw36 <= depth] — memory stays finite *)
}

val e36_overload_response :
  ?params:Topology.Internet.params ->
  ?loads:int list ->
  ?ticks:int ->
  ?probes:int ->
  ?rate:int ->
  ?depth:int ->
  ?reserve:int ->
  unit ->
  e36_row list

val print_e36 : e36_row list -> unit

(** {1 E37 — shard crash, supervised restart, zero verdict divergence}

    The supervision half of DESIGN.md §13: a worker of the sharded
    data plane ({!Multicore.Domainpool}) crashes deterministically
    mid-batch, between flowlets; the supervisor detects the published
    dead flag, revives the shard and the batch drains to completion.
    The only state a crash loses is the victim's flow caches, which
    rebuild warm from the shared immutable FIB snapshots — so the
    delivery verdicts (packets, bytes, delivered, dropped, TTL) are
    byte-identical to a never-crashed run at every shard count, and
    nothing is shed on the way (both asserted in the test-suite). *)

type e37_row = {
  shards37 : int;
  restarts37 : int;  (** supervisor revives (>= 1 when a crash fired) *)
  rounds37 : int;  (** cooperative rounds to drain the batch *)
  delivered37 : int;
  dropped37 : int;
  ttl37 : int;
  shed37 : int;  (** must be 0: a restart loses no traffic *)
  identical37 : bool;  (** verdicts equal the never-crashed baseline *)
}

val e37_crash_recovery :
  ?params:Topology.Internet.params ->
  ?shard_counts:int list ->
  ?flows:int ->
  ?packets_per_flow:int ->
  ?crash_after:int ->
  unit ->
  e37_row list

val print_e37 : e37_row list -> unit
