(** One-shot results report.

    Runs every figure scenario (the paper's §3.2 figures) and
    experiment and renders a single markdown document — the
    "regenerate all the numbers" button behind EXPERIMENTS.md.
    Deterministic: two runs produce identical text. *)

val generate : unit -> string
(** The full report as markdown. Takes a few seconds (it runs all of
    E1–E23). *)

val write : path:string -> unit
(** Render {!generate} to a file. *)
