(** RIP-like intra-domain distance-vector routing with anycast support.

    Routers exchange distance vectors with their neighbors in
    synchronous rounds (split horizon enabled). Anycast follows the
    paper's §3.2 rule for distance-vector protocols: "an IPvN router
    advertise[s] a distance of zero to its anycast address; standard
    distance-vector then ensures that every router will discover the
    next hop to its closest IPvN router". Unlike link-state, a router
    learns only distances and next hops — it cannot identify the other
    members, which is why intra-domain vN-Bone construction over plain
    DV needs the explicit discovery fallback (paper, footnote 2). *)

type t
(** Mutable distance-vector state for one domain. *)

type anycast_decision =
  | Deliver  (** the querying router is itself a group member *)
  | Toward of { next_hop : int; metric : float }
      (** note: no member identity — DV does not reveal it *)

val create : Topology.Internet.t -> domain:int -> t
(** Fresh state. Vectors start cold; call {!converge}. *)

val domain : t -> int

val infinity_metric : float
(** The protocol's "unreachable" metric (the RIP 16, scaled for our
    weights). *)

val advertise_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit
(** Member starts advertising distance zero to the group address. Takes
    effect over subsequent {!converge} rounds.

    @raise Invalid_argument when [member] is not a router of this
    domain. *)

val withdraw_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit

val fail_link : t -> int -> int -> unit
(** [fail_link t a b] (global router ids) removes the adjacency between
    two domain routers from the protocol's view, as a link failure
    would. Routes through the link decay over subsequent rounds —
    bounded by {!infinity_metric}, the classic counting-to-infinity
    cap. No-op when the routers are not adjacent. *)

val restore_link : t -> int -> int -> float -> unit
(** Re-add an adjacency with the given weight. *)

val step : t -> bool
(** One synchronous exchange round; true when any entry changed. *)

val converge : t -> int
(** Run rounds until stable; returns the number of rounds that changed
    something (0 when already stable). *)

val distance : t -> src:int -> dst:int -> float
(** Current believed metric from [src] to router [dst];
    [infinity] when unreachable or outside the domain. *)

val next_hop : t -> src:int -> dst:int -> int option

val anycast_route : t -> src:int -> group:Netcore.Prefix.t -> anycast_decision option
(** Routing decision for an anycast packet at [src] under the current
    (possibly not yet converged) vectors. *)

val anycast_distance : t -> src:int -> group:Netcore.Prefix.t -> float
