module Internet = Topology.Internet
module Graph = Topology.Graph
module Prefix = Netcore.Prefix

type anycast_decision =
  | Deliver
  | Toward of { next_hop : int; metric : float }

let infinity_metric = 64.0

(* Destinations are domain routers (indices 0..n-1) and anycast groups
   (indices n..n+g-1, registered on first advertisement). Vectors are
   dense matrices local-router x destination. *)
type t = {
  inet : Internet.t;
  dom : int;
  router_ids : int array;
  neighbors : (int * float) list array;  (* local idx -> (local idx, w) *)
  mutable group_of : (Prefix.t * bool array) list;
      (* group -> membership flags by local idx; order = column order *)
  mutable dist : float array array;  (* [local][dest-column] *)
  mutable nh : int array array;  (* local idx of next hop, -1 = none/self *)
}

let domain t = t.dom
let num_routers t = Array.length t.router_ids
let num_groups t = List.length t.group_of
let columns t = num_routers t + num_groups t

let in_domain t rid =
  rid >= 0
  && rid < Internet.num_routers t.inet
  && (Internet.router t.inet rid).rdomain = t.dom

let local_index t rid = (Internet.router t.inet rid).rindex

let resize_matrices t =
  let n = num_routers t in
  let cols = columns t in
  let dist = Array.make_matrix n cols infinity_metric in
  let nh = Array.make_matrix n cols (-1) in
  let old_cols = Array.length t.dist.(0) in
  for i = 0 to n - 1 do
    Array.blit t.dist.(i) 0 dist.(i) 0 (min cols old_cols);
    Array.blit t.nh.(i) 0 nh.(i) 0 (min cols old_cols)
  done;
  t.dist <- dist;
  t.nh <- nh

let create inet ~domain =
  let d = Internet.domain inet domain in
  let n = Array.length d.router_ids in
  let neighbors =
    Array.map
      (fun rid ->
        Graph.neighbors inet.graph rid
        |> List.filter_map (fun (nb, w) ->
               if (Internet.router inet nb).rdomain = domain then
                 Some ((Internet.router inet nb).rindex, w)
               else None))
      d.router_ids
  in
  let dist = Array.make_matrix n n infinity_metric in
  let nh = Array.make_matrix n n (-1) in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.0
  done;
  { inet; dom = domain; router_ids = d.router_ids; neighbors; group_of = []; dist; nh }

let group_column t group =
  let rec find i = function
    | [] -> None
    | (g, _) :: rest -> if Prefix.equal g group then Some i else find (i + 1) rest
  in
  Option.map (fun i -> num_routers t + i) (find 0 t.group_of)

let membership t group =
  List.find_map
    (fun (g, flags) -> if Prefix.equal g group then Some flags else None)
    t.group_of

let advertise_anycast t ~group ~member =
  if not (in_domain t member) then
    invalid_arg "Distvec.advertise_anycast: router not in domain";
  let li = local_index t member in
  match membership t group with
  | Some flags -> flags.(li) <- true
  | None ->
      let flags = Array.make (num_routers t) false in
      flags.(li) <- true;
      t.group_of <- t.group_of @ [ (group, flags) ];
      resize_matrices t

let withdraw_anycast t ~group ~member =
  match membership t group with
  | None -> ()
  | Some flags ->
      if in_domain t member then begin
        let li = local_index t member in
        flags.(li) <- false;
        (* the member no longer originates distance 0: reset its own
           entry so the withdrawal can propagate *)
        let col =
          match group_column t group with Some c -> c | None -> assert false
        in
        t.dist.(li).(col) <- infinity_metric;
        t.nh.(li).(col) <- -1
      end

let fail_link t a b =
  if in_domain t a && in_domain t b then begin
    let la = local_index t a and lb = local_index t b in
    t.neighbors.(la) <- List.filter (fun (j, _) -> j <> lb) t.neighbors.(la);
    t.neighbors.(lb) <- List.filter (fun (j, _) -> j <> la) t.neighbors.(lb);
    (* routes whose next hop crossed the dead link evaporate, so the
       withdrawal can propagate instead of lingering forever *)
    let cols = columns t in
    for c = 0 to cols - 1 do
      if t.nh.(la).(c) = lb then begin
        t.dist.(la).(c) <- infinity_metric;
        t.nh.(la).(c) <- -1
      end;
      if t.nh.(lb).(c) = la then begin
        t.dist.(lb).(c) <- infinity_metric;
        t.nh.(lb).(c) <- -1
      end
    done
  end

let restore_link t a b w =
  if in_domain t a && in_domain t b && a <> b then begin
    let la = local_index t a and lb = local_index t b in
    if not (List.exists (fun (j, _) -> j = lb) t.neighbors.(la)) then begin
      t.neighbors.(la) <- (lb, w) :: t.neighbors.(la);
      t.neighbors.(lb) <- (la, w) :: t.neighbors.(lb)
    end
  end

(* Refresh locally-originated entries (self route, member-of-group
   zero routes) before an exchange round. *)
let refresh_origins t =
  let n = num_routers t in
  for i = 0 to n - 1 do
    t.dist.(i).(i) <- 0.0;
    t.nh.(i).(i) <- -1
  done;
  List.iteri
    (fun gi (_, flags) ->
      let col = n + gi in
      for i = 0 to n - 1 do
        if flags.(i) then begin
          t.dist.(i).(col) <- 0.0;
          t.nh.(i).(col) <- -1
        end
      done)
    t.group_of

let step t =
  refresh_origins t;
  let n = num_routers t in
  let cols = columns t in
  let changed = ref false in
  (* snapshot the vectors each neighbor will announce this round *)
  let snapshot_dist = Array.map Array.copy t.dist in
  let snapshot_nh = Array.map Array.copy t.nh in
  for i = 0 to n - 1 do
    List.iter
      (fun (j, w) ->
        for c = 0 to cols - 1 do
          (* split horizon: j does not announce routes whose next hop
             is i back to i *)
          if snapshot_nh.(j).(c) <> i then begin
            let candidate = snapshot_dist.(j).(c) +. w in
            let candidate =
              if candidate > infinity_metric then infinity_metric else candidate
            in
            let current = t.dist.(i).(c) in
            let better =
              candidate < current
              (* route through the current next hop must be refreshed
                 even if worse (topology/membership may have changed) *)
              || (t.nh.(i).(c) = j && not (Float.equal candidate current))
            in
            if better && candidate < infinity_metric then begin
              if
                (not (Float.equal t.dist.(i).(c) candidate))
                || t.nh.(i).(c) <> j
              then changed := true;
              t.dist.(i).(c) <- candidate;
              t.nh.(i).(c) <- j
            end
            else if t.nh.(i).(c) = j && candidate >= infinity_metric then begin
              (* route through j evaporated *)
              if t.dist.(i).(c) < infinity_metric then changed := true;
              t.dist.(i).(c) <- infinity_metric;
              t.nh.(i).(c) <- -1
            end
          end
        done)
      t.neighbors.(i)
  done;
  !changed

let converge t =
  let rec go rounds =
    if rounds > 4 * (num_routers t + 2) * (columns t + 2) then rounds
    else if step t then go (rounds + 1)
    else rounds
  in
  go 0

let distance t ~src ~dst =
  if not (in_domain t src && in_domain t dst) then infinity
  else
    let d = t.dist.(local_index t src).(local_index t dst) in
    if d >= infinity_metric then infinity else d

let next_hop t ~src ~dst =
  if not (in_domain t src && in_domain t dst) then None
  else
    let nh = t.nh.(local_index t src).(local_index t dst) in
    if nh < 0 then None else Some t.router_ids.(nh)

let anycast_distance t ~src ~group =
  if not (in_domain t src) then infinity
  else
    match group_column t group with
    | None -> infinity
    | Some col ->
        let d = t.dist.(local_index t src).(col) in
        if d >= infinity_metric then infinity else d

let anycast_route t ~src ~group =
  if not (in_domain t src) then None
  else
    match (group_column t group, membership t group) with
    | None, _ | _, None -> None
    | Some col, Some flags ->
        let li = local_index t src in
        if flags.(li) then Some Deliver
        else begin
          let d = t.dist.(li).(col) in
          let nh = t.nh.(li).(col) in
          if d >= infinity_metric || nh < 0 then None
          else Some (Toward { next_hop = t.router_ids.(nh); metric = d })
        end
