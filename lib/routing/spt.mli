(** Shortest-path trees (Dijkstra) over {!Topology.Graph}.

    Used for link-state route computation (§3.2), for "ground truth"
    distances in the anycast-stretch experiments, and for vN-Bone
    congruence (§3.3.1). *)

type t = {
  src : int;
  dist : float array;  (** [infinity] for unreachable nodes *)
  parent : int array;  (** [-1] for the source and unreachable nodes *)
}

val dijkstra : Topology.Graph.t -> src:int -> t
(** Single-source shortest paths with a binary heap. *)

val dijkstra_filtered : Topology.Graph.t -> src:int -> allow:(int -> bool) -> t
(** Same, but only traverses nodes satisfying [allow] (the source is
    always traversed). Used to restrict route computation to one
    domain's routers. *)

val distance : t -> int -> float
(** [infinity] when unreachable. *)

val reachable : t -> int -> bool

val path : t -> int -> int list option
(** The node sequence from the source to the argument, inclusive, or
    [None] when unreachable. *)

val next_hop : t -> int -> int option
(** First hop on the path from the source to the argument; [None] when
    unreachable or equal to the source. *)

val hops : Topology.Graph.t -> src:int -> dst:int -> int option
(** Unweighted hop count (BFS), ignoring weights; [None] if
    unreachable. *)

val eccentricity : Topology.Graph.t -> src:int -> allow:(int -> bool) -> int
(** Max BFS depth from [src] over allowed nodes — the number of
    flooding rounds for an LSA originated at [src] to reach the whole
    (filtered) network. *)
