let format_version = 1

(* --- encoding ------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf v

let put_ipv4 buf a = put_u32 buf (Ipv4.to_int a)

let put_body buf body =
  if String.length body > 0xFFFF then
    invalid_arg "Wire.encode: body exceeds 65535 bytes";
  put_u16 buf (String.length body);
  Buffer.add_string buf body

(* Uses the raw accessors, not the option-returning ones: encode runs
   once per injected packet, and the self/provider split is total on
   the bit layout, so nothing needs an option here (hot-path-alloc). *)
let put_ipvn buf a =
  if Ipvn.is_self a then begin
    put_u8 buf 0;
    put_ipv4 buf (Ipvn.raw_ipv4 a)
  end
  else begin
    put_u8 buf 1;
    put_u32 buf (Ipvn.raw_domain a);
    put_u32 buf (Ipvn.raw_host a)
  end

let check_ttl ttl =
  if ttl < 0 || ttl > 255 then invalid_arg "Wire.encode: TTL out of [0, 255]"

let encode (p : Packet.t) =
  check_ttl p.Packet.ttl;
  let buf = Buffer.create 64 in
  put_u8 buf format_version;
  (match p.Packet.payload with
  | Packet.Data _ -> put_u8 buf 0
  | Packet.Encap _ -> put_u8 buf 1);
  put_ipv4 buf p.Packet.src;
  put_ipv4 buf p.Packet.dst;
  put_u8 buf p.Packet.ttl;
  (match p.Packet.payload with
  | Packet.Data body -> put_body buf body
  | Packet.Encap vn ->
      check_ttl vn.Packet.vttl;
      put_u8 buf vn.Packet.version;
      put_u8 buf vn.Packet.vttl;
      put_ipvn buf vn.Packet.vsrc;
      put_ipvn buf vn.Packet.vdst;
      (match vn.Packet.dest_v4_hint with
      | Some a ->
          put_u8 buf 1;
          put_ipv4 buf a
      | None -> put_u8 buf 0);
      put_body buf vn.Packet.body);
  Buffer.contents buf

(* --- decoding ------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

exception Malformed of string

let need c n what =
  if c.pos + n > String.length c.data then
    raise (Malformed ("truncated " ^ what))

let get_u8 c what =
  need c 1 what;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c what =
  let hi = get_u8 c what in
  let lo = get_u8 c what in
  (hi lsl 8) lor lo

let get_u32 c what =
  let hi = get_u16 c what in
  let lo = get_u16 c what in
  (hi lsl 16) lor lo

let get_ipv4 c what = Ipv4.of_int (get_u32 c what)

let get_body c =
  let len = get_u16 c "body length" in
  need c len "body";
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_ipvn c ~version what =
  match get_u8 c (what ^ " tag") with
  | 0 -> Ipvn.self_of_ipv4 ~version (get_ipv4 c what)
  | 1 ->
      let domain = get_u32 c (what ^ " domain") in
      let host = get_u32 c (what ^ " host") in
      (try Ipvn.provider ~version ~domain ~host
       with Invalid_argument m -> raise (Malformed m))
  | t -> raise (Malformed (Printf.sprintf "unknown %s tag %d" what t))

let decode s =
  let c = { data = s; pos = 0 } in
  try
    let v = get_u8 c "format version" in
    if v <> format_version then
      raise (Malformed (Printf.sprintf "unsupported format version %d" v));
    let kind = get_u8 c "payload kind" in
    let src = get_ipv4 c "source" in
    let dst = get_ipv4 c "destination" in
    let ttl = get_u8 c "ttl" in
    let payload =
      match kind with
      | 0 -> Packet.Data (get_body c)
      | 1 ->
          let version = get_u8 c "ipvn version" in
          if version < 1 then raise (Malformed "ipvn version must be positive");
          let vttl = get_u8 c "vttl" in
          let vsrc = get_ipvn c ~version "vsrc" in
          let vdst = get_ipvn c ~version "vdst" in
          let dest_v4_hint =
            match get_u8 c "hint flag" with
            | 0 -> None
            | 1 -> Some (get_ipv4 c "hint")
            | f -> raise (Malformed (Printf.sprintf "unknown hint flag %d" f))
          in
          let body = get_body c in
          Packet.Encap
            { Packet.version; vsrc; vdst; vttl; dest_v4_hint; body }
      | k -> raise (Malformed (Printf.sprintf "unknown payload kind %d" k))
    in
    if c.pos <> String.length s then raise (Malformed "trailing bytes");
    Ok { Packet.src; dst; ttl; payload }
  with Malformed m -> Error m

(* --- header peeks -------------------------------------------------- *)

let header_bytes = 11

let u32_at s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let peek_ok s = String.length s >= header_bytes && Char.code s.[0] = format_version

let peek_dst s = if peek_ok s then Some (Ipv4.of_int (u32_at s 6)) else None

(* Allocation-free variant for the per-packet path: the caller supplies
   the fallback instead of matching on an option (hot-path-alloc). *)
let peek_dst_or s ~default =
  if peek_ok s then Ipv4.of_int (u32_at s 6) else default
let peek_src s = if peek_ok s then Some (Ipv4.of_int (u32_at s 2)) else None
let peek_ttl s = if peek_ok s then Some (Char.code s.[10]) else None

let peek_kind s =
  if not (peek_ok s) then None
  else
    match Char.code s.[1] with
    | 0 -> Some `Data
    | 1 -> Some `Encap
    | _ -> None

let wire_length (p : Packet.t) =
  let ipvn_len a = if Ipvn.is_self a then 5 else 9 in
  let header = 1 + 1 + 4 + 4 + 1 in
  match p.Packet.payload with
  | Packet.Data body -> header + 2 + String.length body
  | Packet.Encap vn ->
      header + 1 + 1
      + ipvn_len vn.Packet.vsrc
      + ipvn_len vn.Packet.vdst
      + (match vn.Packet.dest_v4_hint with Some _ -> 5 | None -> 1)
      + 2
      + String.length vn.Packet.body

(* --- arena views ---------------------------------------------------- *)

(* Two accessor families. The unsafe one (big_put8 .. big_put_body,
   big_u32, the peeks) may only be used where evolvelint's bounds pack
   (rules_bounds.ml, DESIGN.md §9.5) proves every offset in-bounds —
   `dune build @lint` fails otherwise, and CI independently checks
   that each unchecked access site appears in the prover's
   `--proven` list. The checked one (big_put8c .. big_put_ipvnc) is
   for the encap encoder, whose field widths depend on Ipvn.is_self —
   a relational fact outside the prover's linear domain — so those
   writes keep the dynamic bigarray check. *)

let big_put8 (b : Arena.buf) i v =
  Bigarray.Array1.unsafe_set b i (Char.unsafe_chr (v land 0xFF))

let big_put16 b i v =
  big_put8 b i (v lsr 8);
  big_put8 b (i + 1) v

let big_put32 b i v =
  big_put16 b i (v lsr 16);
  big_put16 b (i + 2) v

let big_put_body b i body =
  if String.length body > 0xFFFF then
    invalid_arg "Wire.encode_into: body exceeds 65535 bytes";
  let n = String.length body in
  big_put16 b i n;
  for k = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b (i + 2 + k) (String.unsafe_get body k)
  done;
  i + 2 + n

(* Checked variants for the encap path: Bigarray.Array1.set keeps the
   runtime bounds check. The width of each ipvn field (5 or 9 bytes)
   depends on Ipvn.is_self, so relating the writes to the wire_length
   the arena allocated needs relational reasoning the bounds prover
   does not attempt; these sites carry an arena-bounds allowlist entry
   instead of a proof. *)

let big_put8c (b : Arena.buf) i v =
  Bigarray.Array1.set b i (Char.unsafe_chr (v land 0xFF))

let big_put16c b i v =
  big_put8c b i (v lsr 8);
  big_put8c b (i + 1) v

let big_put32c b i v =
  big_put16c b i (v lsr 16);
  big_put16c b (i + 2) v

let big_put_bodyc b i body =
  if String.length body > 0xFFFF then
    invalid_arg "Wire.encode_into: body exceeds 65535 bytes";
  let n = String.length body in
  big_put16c b i n;
  for k = 0 to n - 1 do
    Bigarray.Array1.set b (i + 2 + k) (String.unsafe_get body k)
  done;
  i + 2 + n

let big_put_ipvnc b i a =
  if Ipvn.is_self a then begin
    big_put8c b i 0;
    big_put32c b (i + 1) (Ipv4.to_int (Ipvn.raw_ipv4 a));
    i + 5
  end
  else begin
    big_put8c b i 1;
    big_put32c b (i + 1) (Ipvn.raw_domain a);
    big_put32c b (i + 5) (Ipvn.raw_host a);
    i + 9
  end

(* The payload match comes first so each branch can bind the length the
   prover needs: the data branch states it as header + u16 + body
   inline, which — together with the Arena.alloc postcondition and the
   off < 0 guard — is exactly what licenses its unsafe writes. *)
let encode_into (p : Packet.t) arena =
  check_ttl p.Packet.ttl;
  match p.Packet.payload with
  | Packet.Data body ->
      let len = header_bytes + 2 + String.length body in
      let off = Arena.alloc arena len in
      if off < 0 then invalid_arg "Wire.encode_into: arena exhausted";
      let b = Arena.buf arena in
      big_put8 b off format_version;
      big_put8 b (off + 1) 0;
      big_put32 b (off + 2) (Ipv4.to_int p.Packet.src);
      big_put32 b (off + 6) (Ipv4.to_int p.Packet.dst);
      big_put8 b (off + 10) p.Packet.ttl;
      ignore (big_put_body b (off + 11) body : int);
      off
  | Packet.Encap vn ->
      check_ttl vn.Packet.vttl;
      let len = wire_length p in
      let off = Arena.alloc arena len in
      if off < 0 then invalid_arg "Wire.encode_into: arena exhausted";
      let b = Arena.buf arena in
      big_put8c b off format_version;
      big_put8c b (off + 1) 1;
      big_put32c b (off + 2) (Ipv4.to_int p.Packet.src);
      big_put32c b (off + 6) (Ipv4.to_int p.Packet.dst);
      big_put8c b (off + 10) p.Packet.ttl;
      big_put8c b (off + 11) vn.Packet.version;
      big_put8c b (off + 12) vn.Packet.vttl;
      let i = big_put_ipvnc b (off + 13) vn.Packet.vsrc in
      let i = big_put_ipvnc b i vn.Packet.vdst in
      let i =
        match vn.Packet.dest_v4_hint with
        | Some a ->
            big_put8c b i 1;
            big_put32c b (i + 1) (Ipv4.to_int a);
            i + 5
        | None ->
            big_put8c b i 0;
            i + 1
      in
      ignore (big_put_bodyc b i vn.Packet.body : int);
      off

let big_u32 (b : Arena.buf) i =
  (Char.code (Bigarray.Array1.unsafe_get b i) lsl 24)
  lor (Char.code (Bigarray.Array1.unsafe_get b (i + 1)) lsl 16)
  lor (Char.code (Bigarray.Array1.unsafe_get b (i + 2)) lsl 8)
  lor Char.code (Bigarray.Array1.unsafe_get b (i + 3))

let big_peek_ok (b : Arena.buf) ~off ~len =
  len >= header_bytes && off >= 0
  && off + len <= Bigarray.Array1.dim b
  && Char.code (Bigarray.Array1.unsafe_get b off) = format_version

let peek_dst_big b ~off ~len ~default =
  if big_peek_ok b ~off ~len then Ipv4.of_int (big_u32 b (off + 6)) else default

let peek_ttl_big b ~off ~len ~default =
  if big_peek_ok b ~off ~len then
    Char.code (Bigarray.Array1.unsafe_get b (off + 10))
  else default

let decode_big b ~off ~len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim b then
    Error "view out of bounds"
  else
    (* the guard above is the proof: off >= 0, len >= 0 and
       off + len <= dim, and String.init keeps i < len *)
    decode (String.init len (fun i -> Bigarray.Array1.unsafe_get b (off + i)))
