(* Layout of the 64-bit value:
   bit 63          : self-addressing flag
   self form       : bits 31..0 carry the embedded IPv4 address
   provider form   : bits 50..31 carry the domain id, bits 30..0 the
                     host index. *)

type t = { version : int; value : int64 }

let self_flag = Int64.shift_left 1L 63

let check_version version =
  if version < 1 || version > 255 then
    invalid_arg "Ipvn: version out of range [1, 255]"

let version t = t.version

let self_of_ipv4 ~version a =
  check_version version;
  { version; value = Int64.logor self_flag (Int64.of_int (Ipv4.to_int a)) }

let provider ~version ~domain ~host =
  check_version version;
  if domain < 0 || domain >= 1 lsl 20 then
    invalid_arg "Ipvn.provider: domain out of range";
  if host < 0 || host >= 1 lsl 31 then
    invalid_arg "Ipvn.provider: host out of range";
  let v =
    Int64.logor
      (Int64.shift_left (Int64.of_int domain) 31)
      (Int64.of_int host)
  in
  { version; value = v }

let is_self t = Int64.logand t.value self_flag <> 0L

(* Raw field accessors for the wire encoder's per-packet path: total on
   the bit layout, no option cell. [raw_ipv4] is meaningful only when
   [is_self]; [raw_domain]/[raw_host] only when not. *)
let raw_ipv4 t = Ipv4.of_int (Int64.to_int (Int64.logand t.value 0xFFFF_FFFFL))

let raw_domain t =
  Int64.to_int (Int64.logand (Int64.shift_right_logical t.value 31) 0xF_FFFFL)

let raw_host t = Int64.to_int (Int64.logand t.value 0x7FFF_FFFFL)

let embedded_ipv4 t = if is_self t then Some (raw_ipv4 t) else None
let domain t = if is_self t then None else Some (raw_domain t)
let host t = if is_self t then None else Some (raw_host t)

let compare a b =
  match Int.compare a.version b.version with
  | 0 -> Int64.unsigned_compare a.value b.value
  | c -> c

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.version, t.value)

let to_string t =
  if is_self t then
    match embedded_ipv4 t with
    | Some a -> Printf.sprintf "v%d:self[%s]" t.version (Ipv4.to_string a)
    | None -> assert false
  else
    match (domain t, host t) with
    | Some d, Some h -> Printf.sprintf "v%d:d%d.h%d" t.version d h
    | _ -> assert false

let pp fmt t = Format.pp_print_string fmt (to_string t)
