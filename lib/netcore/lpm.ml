(* A plain (non-compressed) binary trie over address bits. Depth is
   bounded by 32, so the lack of path compression costs little and keeps
   the structure easy to verify. *)

type 'a t = Leaf | Node of 'a node
and 'a node = { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_node_empty = function
  | { value = None; zero = Leaf; one = Leaf } -> true
  | _ -> false

let node value zero one =
  let n = { value; zero; one } in
  if is_node_empty n then Leaf else Node n

let is_empty = function Leaf -> true | Node _ -> false

let rec add_bits net depth len v t =
  match t with
  | Leaf ->
      if depth = len then node (Some v) Leaf Leaf
      else if Ipv4.bit net depth then node None Leaf (add_bits net (depth + 1) len v Leaf)
      else node None (add_bits net (depth + 1) len v Leaf) Leaf
  | Node n ->
      if depth = len then node (Some v) n.zero n.one
      else if Ipv4.bit net depth then
        node n.value n.zero (add_bits net (depth + 1) len v n.one)
      else node n.value (add_bits net (depth + 1) len v n.zero) n.one

let add p v t = add_bits (Prefix.network p) 0 (Prefix.length p) v t

let rec remove_bits net depth len t =
  match t with
  | Leaf -> Leaf
  | Node n ->
      if depth = len then node None n.zero n.one
      else if Ipv4.bit net depth then
        node n.value n.zero (remove_bits net (depth + 1) len n.one)
      else node n.value (remove_bits net (depth + 1) len n.zero) n.one

let remove p t = remove_bits (Prefix.network p) 0 (Prefix.length p) t

let rec find_exact_bits net depth len t =
  match t with
  | Leaf -> None
  | Node n ->
      if depth = len then n.value
      else if Ipv4.bit net depth then find_exact_bits net (depth + 1) len n.one
      else find_exact_bits net (depth + 1) len n.zero

let find_exact p t = find_exact_bits (Prefix.network p) 0 (Prefix.length p) t

let lookup addr t =
  let rec go depth t best =
    match t with
    | Leaf -> best
    | Node n ->
        let best =
          match n.value with
          | Some v -> Some (Prefix.make addr depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if Ipv4.bit addr depth then go (depth + 1) n.one best
        else go (depth + 1) n.zero best
  in
  go 0 t None

(* The per-packet lookup: unlike [lookup] it never builds a prefix, and
   it returns the [Some] stored in the matching node, so a hit allocates
   nothing. The address threads through as an argument to keep the loop
   capture-free (hot-path-alloc). *)
let rec lookup_value_bits addr depth t best =
  match t with
  | Leaf -> best
  | Node n ->
      let best = match n.value with Some _ as v -> v | None -> best in
      if depth = 32 then best
      else if Ipv4.bit addr depth then lookup_value_bits addr (depth + 1) n.one best
      else lookup_value_bits addr (depth + 1) n.zero best

let lookup_value addr t = lookup_value_bits addr 0 t None

let fold f t acc =
  (* [path] is the address bits accumulated so far (as an int shifted to
     the high end), [depth] their count. *)
  let rec go path depth t acc =
    match t with
    | Leaf -> acc
    | Node n ->
        let acc =
          match n.value with
          | Some v -> f (Prefix.make (Ipv4.of_int path) depth) v acc
          | None -> acc
        in
        let acc = go path (depth + 1) n.zero acc in
        go (path lor (1 lsl (31 - depth))) (depth + 1) n.one acc
  in
  go 0 0 t acc

let iter f t = fold (fun p v () -> f p v) t ()

let bindings t =
  fold (fun p v acc -> (p, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

let cardinal t = fold (fun _ _ n -> n + 1) t 0
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let rec map f = function
  | Leaf -> Leaf
  | Node n ->
      Node { value = Option.map f n.value; zero = map f n.zero; one = map f n.one }

let union f a b =
  fold
    (fun p vb acc ->
      match find_exact p acc with
      | None -> add p vb acc
      | Some va -> add p (f p va vb) acc)
    b a
