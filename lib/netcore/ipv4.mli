(** IPv4 addresses.

    Addresses are 32-bit unsigned values. In the reproduction they play
    the role of the paper's ubiquitous IPv(N-1) addresses: the substrate
    over which anycast redirection (§3.2) and vN-Bone tunnels (§3.3)
    run. *)

type t
(** A 32-bit IPv4 address. Values are totally ordered and hashable. *)

val of_int32 : int32 -> t
(** [of_int32 i] interprets [i] as a big-endian address value. *)

val to_int32 : t -> int32

val of_int : int -> t
(** [of_int i] builds the address whose 32-bit value is [i land
    0xFFFFFFFF]. *)

val to_int : t -> int
(** [to_int a] is the address value in [\[0, 2^32)]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [\[0, 255\]]. *)

val of_string : string -> t
(** Parse dotted-quad notation.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Dotted-quad rendering, e.g. ["10.0.3.1"]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val bit : t -> int -> bool
(** [bit a i] is bit [i] of the address, where bit 0 is the most
    significant bit (network side) and bit 31 the least significant.
    @raise Invalid_argument if [i] is outside [\[0, 31\]]. *)

val succ : t -> t
(** Next address, wrapping at the top of the space. *)

val add : t -> int -> t
(** [add a k] offsets [a] by [k] addresses (mod 2^32). *)

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val pp : Format.formatter -> t -> unit
