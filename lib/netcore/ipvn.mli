(** Addresses for a next-generation IP ("IPvN").

    The paper deliberately places no constraint on IPvN addressing
    beyond what universal access (§2.1) forces: an endhost whose access
    provider has not deployed IPvN must be able to assign itself a
    temporary address (§3.3.2). Following the paper (and RFC 3056), a
    self-address uses one flag bit and embeds the host's unique
    IPv(N-1) — here IPv4 — address in the remaining bits.

    Provider-assigned addresses carry the assigning domain, so vN-Bone
    routing can advertise them as a per-domain aggregate. *)

type t
(** An IPvN address: a protocol version (the "N") plus a 64-bit value. *)

val version : t -> int
(** The IP generation this address belongs to (e.g. 8 for "IPv8"). *)

val self_of_ipv4 : version:int -> Ipv4.t -> t
(** [self_of_ipv4 ~version a] is the temporary self-assigned address an
    endhost with IPv4 address [a] gives itself, per the paper's
    one-flag-bit construction.
    @raise Invalid_argument if [version] is outside [\[1, 255\]]. *)

val provider : version:int -> domain:int -> host:int -> t
(** [provider ~version ~domain ~host] is the address a participating
    ISP ([domain]) assigns to its [host]-th IPvN endpoint.
    @raise Invalid_argument if any field is out of range
    ([version] in [\[1,255\]], [domain] in [\[0, 2^20)], [host] in
    [\[0, 2^31)]). *)

val is_self : t -> bool
(** True for self-assigned (temporary) addresses. *)

val embedded_ipv4 : t -> Ipv4.t option
(** For a self-address, the IPv4 address it was derived from. This is
    the hook the paper's egress-selection options use: the destination's
    IPv(N-1) address "inferred from its temporary IPvN address". *)

val domain : t -> int option
(** For a provider-assigned address, the assigning domain. *)

val host : t -> int option
(** For a provider-assigned address, the host index within its domain. *)

val raw_ipv4 : t -> Ipv4.t
(** Allocation-free companion of {!embedded_ipv4} for the wire
    encoder's per-packet path; meaningful only when {!is_self}. *)

val raw_domain : t -> int
(** Allocation-free companion of {!domain}; meaningful only when the
    address is provider-assigned (not {!is_self}). *)

val raw_host : t -> int
(** Allocation-free companion of {!host}; meaningful only when the
    address is provider-assigned (not {!is_self}). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
