(** Binary wire format for packets.

    A compact, versioned encoding of {!Packet.t} — what would actually
    cross a link, including the IPvN-in-IPv4 encapsulation of §3.3.2's
    tunnels. Layout (all integers big-endian):

    {v
    byte 0      : format version (1)
    byte 1      : payload kind (0 = data, 1 = encapsulated IPvN)
    bytes 2-5   : IPv4 source
    bytes 6-9   : IPv4 destination
    byte 10     : TTL
    data:         u16 body length, body bytes
    encap:        IPvN version (u8), vTTL (u8),
                  vsrc (u8 tag + payload), vdst (u8 tag + payload),
                  dest hint (u8 flag + optional IPv4),
                  u16 body length, body bytes
    v}

    IPvN addresses encode as a tag byte (0 = self, 1 = provider)
    followed by the embedded IPv4 (self) or u32 domain + u32 host
    (provider). *)

val encode : Packet.t -> string
(** Serialize. @raise Invalid_argument when a body exceeds 65535
    bytes or a TTL is outside [\[0, 255\]]. *)

val decode : string -> (Packet.t, string) result
(** Parse; [Error] describes the first malformed field. Every packet
    produced by {!encode} decodes back to an equal value (round-trip
    property in the test-suite). *)

val wire_length : Packet.t -> int
(** Encoded size in bytes, without encoding. *)

(** {2 Header peeks}

    A forwarding element only needs the fixed 11-byte header to make
    its per-hop decision (§3.3.2: tunnel transit routers treat the
    IPvN payload as opaque bytes). These peeks read single header
    fields straight out of the encoded string without allocating or
    parsing the payload — the data-plane hot path. Each returns
    [None] when the string is shorter than the fixed header or not
    format version 1. *)

val peek_dst : string -> Ipv4.t option
(** IPv4 destination (bytes 6-9) of an encoded packet. *)

val peek_dst_or : string -> default:Ipv4.t -> Ipv4.t
(** Like {!peek_dst} but returns [default] instead of [None], so the
    per-packet forwarding loop reads the destination without
    allocating an option cell. *)

val peek_src : string -> Ipv4.t option
(** IPv4 source (bytes 2-5) of an encoded packet. *)

val peek_ttl : string -> int option
(** TTL (byte 10) of an encoded packet. *)

val peek_kind : string -> [ `Data | `Encap ] option
(** Payload kind (byte 1): plain data or encapsulated IPvN. *)

(** {2 Arena views}

    The sharded data plane (DESIGN.md §11) keeps packet bytes in
    pre-allocated {!Arena} slabs so the steady-state forwarding loop
    never touches the GC. These variants encode into and peek out of
    an [(off, len)] view of a slab instead of a heap string; §3.3.2's
    opaque-payload rule means per-hop forwarding only ever reads the
    fixed 11-byte header of the view. *)

val encode_into : Packet.t -> Arena.t -> int
(** [encode_into p arena] serializes [p] into freshly bump-allocated
    arena bytes and returns the slab offset; the view length is
    {!wire_length}[ p]. Byte-for-byte identical to {!encode}.
    @raise Invalid_argument when the arena is exhausted, a body
    exceeds 65535 bytes, or a TTL is outside [\[0, 255\]]. *)

val peek_dst_big : Arena.buf -> off:int -> len:int -> default:Ipv4.t -> Ipv4.t
(** IPv4 destination of the encoded packet at [(off, len)], or
    [default] when the view is out of bounds, shorter than the fixed
    header, or not format version 1. Allocation-free. *)

val peek_ttl_big : Arena.buf -> off:int -> len:int -> default:int -> int
(** TTL (byte 10) of the encoded packet at [(off, len)], or [default]
    under the same conditions as {!peek_dst_big}. Allocation-free. *)

val decode_big : Arena.buf -> off:int -> len:int -> (Packet.t, string) result
(** Copying decode of the view — the boundary/test-suite counterpart
    proving {!encode_into} round-trips; not for the per-hop path. *)
