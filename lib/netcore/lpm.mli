(** Longest-prefix-match tables.

    A persistent binary trie from {!Prefix} keys to arbitrary values,
    with longest-match lookup — the core forwarding-table structure for
    both the IPv4 substrate and the anycast routing experiments, where
    §3.2's non-aggregatable anycast prefixes sit alongside ordinary
    unicast routes. *)

type 'a t
(** A table mapping prefixes to values of type ['a]. Persistent:
    operations return new tables. *)

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding of
    exactly [p]. Bindings for other (longer or shorter) prefixes are
    unaffected. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the binding for exactly [p], if any. *)

val find_exact : Prefix.t -> 'a t -> 'a option
(** The value bound to exactly [p]. *)

val lookup : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [lookup addr t] is the binding with the longest prefix containing
    [addr], or [None] when no bound prefix covers it. *)

val lookup_value : Ipv4.t -> 'a t -> 'a option

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over all bindings, in unspecified order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings sorted by {!Prefix.compare}. *)

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val of_list : (Prefix.t * 'a) list -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val union : (Prefix.t -> 'a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** [union f a b] contains every binding of [a] and [b]; prefixes bound
    in both are merged with [f]. *)
