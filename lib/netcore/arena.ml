type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable slab : buf; mutable used : int }

let make_slab bytes : buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout bytes

let create ~bytes =
  if bytes < 0 then invalid_arg "Arena.create: negative size";
  { slab = make_slab bytes; used = 0 }

let capacity t = Bigarray.Array1.dim t.slab
let used t = t.used
let buf t = t.slab

(* Bump allocation: a single mutable cursor, no per-packet header, no
   free list. Returns -1 on exhaustion instead of an option so callers
   on the forwarding path stay allocation-free (hot-path-alloc). *)
let alloc t len =
  if len < 0 then invalid_arg "Arena.alloc: negative length";
  let off = t.used in
  if off + len > Bigarray.Array1.dim t.slab then -1
  else begin
    t.used <- off + len;
    off
  end

let reset t = t.used <- 0

let ensure t ~bytes =
  if t.used <> 0 then invalid_arg "Arena.ensure: arena in use";
  if bytes > Bigarray.Array1.dim t.slab then t.slab <- make_slab bytes
