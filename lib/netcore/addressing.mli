(** Deterministic address-plan for simulated internets.

    Every domain (ISP/AS) owns a /16; routers and endhosts get fixed
    addresses inside it. Anycast addresses come in the paper's two
    §3.2 flavours:

    - {!anycast_global}: a non-aggregatable /24 from a dedicated range,
      as in inter-domain Option 1;
    - {!anycast_in_domain}: a /24 carved out of the default ISP's own
      /16, as in inter-domain Option 2 ("reuse a piece of the existing
      unicast address space ... allocated from the unicast address
      space of a default ISP"). *)

val max_domains : int
(** Domains must have ids in [\[0, max_domains)]. *)

val domain_prefix : int -> Prefix.t
(** The /16 owned by a domain. @raise Invalid_argument when the id is
    out of range. *)

val domain_of_address : Ipv4.t -> int option
(** Inverse of the address plan: which domain owns this address, if
    any. Anycast and reserved ranges return the owning domain for
    Option 2 addresses and [None] for Option 1 addresses. *)

val router_address : domain:int -> index:int -> Ipv4.t
(** Address of the [index]-th router of a domain (index in
    [\[0, 16384)]). *)

val endhost_address : domain:int -> index:int -> Ipv4.t
(** Address of the [index]-th endhost of a domain (index in
    [\[0, 16384)]). *)

val is_router_address : Ipv4.t -> bool
val is_endhost_address : Ipv4.t -> bool

val anycast_global : group:int -> Prefix.t
(** Option 1: the dedicated, non-aggregatable /24 of anycast group
    [group] (e.g. one group per IPvN generation being deployed). These
    prefixes do not belong to any domain. *)

val anycast_in_domain : domain:int -> group:int -> Prefix.t
(** Option 2: a /24 inside [domain]'s own /16, reserved for anycast
    group [group]. Unmodified unicast routing naturally carries these
    packets toward [domain] — the "default" provider. *)

val anycast_address : Prefix.t -> Ipv4.t
(** The single well-known address inside an anycast prefix that clients
    send to. *)
