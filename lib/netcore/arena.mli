(** Pre-allocated packet-buffer slabs for the data-plane hot path.

    §3.3.2's forwarding model treats packet payloads as opaque bytes;
    nothing on the per-hop path needs to parse or copy them. An arena
    makes that concrete: one [Bigarray] slab of raw bytes, a bump
    cursor, and offset-based views ({!Wire.encode_into},
    {!Wire.peek_dst_big}), so packet bytes in steady state live
    outside the OCaml heap and never touch the GC. Lifetime rule
    (DESIGN.md §11): offsets handed out by {!alloc} stay valid until
    the owner calls {!reset}; the owner resets only between batches,
    when no packet is in flight. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The raw slab: a C-layout byte bigarray, safe to read from other
    domains once the offset has been published (the bytes are written
    before the offset escapes, and never mutated afterwards). *)

type t
(** An arena: one slab plus a bump cursor. Owned by a single writer. *)

val create : bytes:int -> t
(** [create ~bytes] allocates a slab of [bytes] bytes.
    @raise Invalid_argument when [bytes] is negative. *)

val alloc : t -> int -> int
(** [alloc t len] reserves [len] bytes and returns the slab offset, or
    [-1] when the slab is exhausted — an int sentinel rather than an
    option so the packet path allocates nothing (hot-path-alloc).
    @raise Invalid_argument when [len] is negative. *)

val buf : t -> buf
(** The backing slab. Offsets from {!alloc} index into this. *)

val capacity : t -> int
(** Slab size in bytes. *)

val used : t -> int
(** Bytes allocated since the last {!reset}. *)

val reset : t -> unit
(** Rewind the bump cursor to zero, invalidating all outstanding
    offsets. Steady-state batches reuse the slab with zero GC work. *)

val ensure : t -> bytes:int -> unit
(** [ensure t ~bytes] grows the slab to at least [bytes] if needed.
    Setup-time only: @raise Invalid_argument when the arena has live
    allocations ([used t <> 0]). *)
