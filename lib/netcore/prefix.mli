(** CIDR prefixes over {!Ipv4} addresses.

    A prefix is a network address plus a mask length. The paper's
    Option 1 inter-domain anycast (§3.2) revolves around "non-aggregatable"
    prefixes (longer than the /22 commonly accepted for global
    propagation); {!is_globally_routable} encodes that policy line. *)

type t
(** A CIDR prefix. The network address is kept in canonical form: all
    host bits are zero. *)

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len] with host bits cleared.
    @raise Invalid_argument if [len] is outside [\[0, 32\]]. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"]. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val network : t -> Ipv4.t
val length : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

val mem : Ipv4.t -> t -> bool
(** [mem addr p] is true when [addr] lies inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes outer inner] is true when every address of [inner] lies in
    [outer]. *)

val split : t -> t * t
(** [split p] halves [p] into its two children [p0/len+1] and
    [p1/len+1]. @raise Invalid_argument when [length p = 32]. *)

val host : t -> int -> Ipv4.t
(** [host p i] is the [i]-th address inside [p].
    @raise Invalid_argument if [i] does not fit in the host bits. *)

val size : t -> int
(** Number of addresses covered, as an int (safe: 2^32 fits). *)

val is_globally_routable : t -> bool
(** True when the prefix is no longer than the /22 that the paper deems
    acceptable for propagation in today's inter-domain routing. *)

val global_routability_limit : int
(** The /22 boundary used by {!is_globally_routable}. *)
