(** Inter-domain business relationships (Gao–Rexford model) — the
    policy substrate over which §3.2's anycast prefixes propagate and
    §2's adoption incentives are computed.

    The value names the role the {e remote} domain plays for the local
    one: if domain [a] buys transit from [b], then seen from [a] the
    relationship is [Provider], and seen from [b] it is [Customer]. *)

type t = Customer | Peer | Provider

val invert : t -> t
(** The same relationship seen from the other side. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val export_allowed : learned_from:t -> to_:t -> bool
(** Gao–Rexford export rule: a route learned from [learned_from] may be
    announced to a neighbor in role [to_] only if the route came from a
    customer, or the neighbor is a customer. Keeping to this rule makes
    policy routing convergent (no dispute wheels). *)

val local_preference : t -> int
(** Route-selection preference by the role of the neighbor the route
    was learned from: customer routes are preferred over peer routes
    over provider routes. Larger is better. *)
