(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository is seeded, so runs are exactly
    reproducible (DESIGN.md Section 7, testing strategy); [split]
    derives independent streams so that adding a random draw in one
    component does not perturb another. This is the only module allowed
    to be a randomness source — evolvelint rejects [Random.*] anywhere
    else. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** A generator seeded with the given value. *)

val split : t -> t
(** A new generator statistically independent from (but
    deterministically derived from) the current state of [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [k] distinct elements (all of [xs] when
    [k >= length xs]). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[1, n\]] with Zipf exponent [s]. *)
