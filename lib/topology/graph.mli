(** Undirected weighted graphs over integer nodes.

    The router-level internet, each domain's internal topology, the
    AS-level domain graph and every vN-Bone (§3.3.1) are all instances
    of this structure. *)

type t

val create : n:int -> t
(** A graph with nodes [0 .. n-1] and no edges. *)

val n : t -> int
(** Number of nodes. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds the undirected edge [u -- v] with weight
    [w]. Replaces the weight if the edge already exists.
    @raise Invalid_argument on self-loops, out-of-range nodes, or
    non-positive weights. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val has_edge : t -> int -> int -> bool
val edge_weight : t -> int -> int -> float option
val degree : t -> int -> int
val neighbors : t -> int -> (int * float) list
val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
val edge_count : t -> int

val edges : t -> (int * int * float) list
(** Every undirected edge once, with [u < v]. *)

val copy : t -> t

val components : t -> int list list
(** Connected components, each as a list of nodes. *)

val component_ids : t -> int array
(** [ids.(v)] is the component index of node [v]. *)

val is_connected : t -> bool
(** True when there is one component (vacuously true for [n = 0]). *)

val pp : Format.formatter -> t -> unit
