type router = {
  rid : int;
  rdomain : int;
  rindex : int;
  raddr : Netcore.Ipv4.t;
}

type endhost = {
  hid : int;
  hdomain : int;
  hindex : int;
  haddr : Netcore.Ipv4.t;
  access_router : int;
}

type domain = {
  did : int;
  prefix : Netcore.Prefix.t;
  router_ids : int array;
  endhost_ids : int array;
  is_transit : bool;
}

type interlink = {
  a_domain : int;
  b_domain : int;
  a_router : int;
  b_router : int;
  rel : Relationship.t;
}

type t = {
  graph : Graph.t;
  routers : router array;
  endhosts : endhost array;
  domains : domain array;
  interlinks : interlink list;
  domain_graph : Graph.t;
}

let num_domains t = Array.length t.domains
let num_routers t = Array.length t.routers
let router t i = t.routers.(i)
let domain t i = t.domains.(i)
let endhost t i = t.endhosts.(i)

let router_of_addr t a =
  Array.find_opt (fun r -> Netcore.Ipv4.equal r.raddr a) t.routers

let endhost_of_addr t a =
  Array.find_opt (fun h -> Netcore.Ipv4.equal h.haddr a) t.endhosts

let domain_of_addr t a =
  match Netcore.Addressing.domain_of_address a with
  | Some d when d < num_domains t -> Some d
  | _ -> None

let relationship t ~of_ ~to_ =
  List.find_map
    (fun l ->
      if l.a_domain = of_ && l.b_domain = to_ then Some l.rel
      else if l.a_domain = to_ && l.b_domain = of_ then
        Some (Relationship.invert l.rel)
      else None)
    t.interlinks

let neighbor_domains t d =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if l.a_domain = d then Hashtbl.replace seen l.b_domain l.rel
      else if l.b_domain = d then
        Hashtbl.replace seen l.a_domain (Relationship.invert l.rel))
    t.interlinks;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let border_routers t d =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if l.a_domain = d then Hashtbl.replace seen l.a_router ()
      else if l.b_domain = d then Hashtbl.replace seen l.b_router ())
    t.interlinks;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort Int.compare

let interlinks_between t a b =
  List.filter_map
    (fun l ->
      if l.a_domain = a && l.b_domain = b then Some l
      else if l.a_domain = b && l.b_domain = a then
        Some
          {
            a_domain = l.b_domain;
            b_domain = l.a_domain;
            a_router = l.b_router;
            b_router = l.a_router;
            rel = Relationship.invert l.rel;
          }
      else None)
    t.interlinks

let routers_of_domain t d =
  Array.to_list (Array.map (fun id -> t.routers.(id)) t.domains.(d).router_ids)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

type intra_style =
  | Ring_chords of int
  | Waxman of float * float
  | Erdos_renyi of float

type link_weight = Unit_weight | Uniform_weight of float * float

type params = {
  transit_domains : int;
  stubs_per_transit : int;
  routers_per_transit : int;
  routers_per_stub : int;
  endhosts_per_domain : int;
  extra_transit_peering : float;
  stub_multihoming : float;
  stub_peering : float;
  intra_style : intra_style;
  link_weight : link_weight;
  interlink_weight : float;
  seed : int64;
}

let default_params =
  {
    transit_domains = 4;
    stubs_per_transit = 6;
    routers_per_transit = 12;
    routers_per_stub = 6;
    endhosts_per_domain = 4;
    extra_transit_peering = 0.3;
    stub_multihoming = 0.25;
    stub_peering = 0.1;
    intra_style = Ring_chords 3;
    link_weight = Unit_weight;
    interlink_weight = 1.0;
    seed = 42L;
  }

let weight_of rng = function
  | Unit_weight -> 1.0
  | Uniform_weight (lo, hi) -> lo +. Rng.float rng (hi -. lo)

(* Generate an intra-domain topology over local nodes [0..n-1] as an
   edge list, guaranteed connected. *)
let intra_edges rng style n =
  let edges = Hashtbl.create (2 * n) in
  let add u v =
    if u <> v then begin
      let u, v = if u < v then (u, v) else (v, u) in
      Hashtbl.replace edges (u, v) ()
    end
  in
  (match style with
  | Ring_chords k ->
      if n > 1 then
        for i = 0 to n - 1 do
          add i ((i + 1) mod n)
        done;
      let chords = if n > 3 then k * n / 4 else 0 in
      for _ = 1 to chords do
        add (Rng.int rng n) (Rng.int rng n)
      done
  | Waxman (alpha, beta) ->
      let xs = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
      let dist (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2) in
      let diag = sqrt 2.0 in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let p = alpha *. exp (-.dist xs.(u) xs.(v) /. (beta *. diag)) in
          if Rng.bernoulli rng p then add u v
        done
      done
  | Erdos_renyi p ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng p then add u v
        done
      done);
  (* repair connectivity: link each component to the next *)
  let g = Graph.create ~n in
  Hashtbl.iter (fun (u, v) () -> Graph.add_edge g u v 1.0) edges;
  (match Graph.components g with
  | [] | [ _ ] -> ()
  | first :: rest ->
      let anchor = ref (List.nth first (Rng.int rng (List.length first))) in
      List.iter
        (fun comp ->
          let v = List.nth comp (Rng.int rng (List.length comp)) in
          add !anchor v;
          anchor := v)
        rest);
  Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare

let build p =
  if p.transit_domains <= 0 then invalid_arg "Internet.build: no transit domains";
  if p.routers_per_transit <= 0 || p.routers_per_stub <= 0 then
    invalid_arg "Internet.build: domains need at least one router";
  if p.stubs_per_transit < 0 || p.endhosts_per_domain < 0 then
    invalid_arg "Internet.build: negative sizes";
  let rng = Rng.create p.seed in
  let num_domains = p.transit_domains * (1 + p.stubs_per_transit) in
  let is_transit d = d < p.transit_domains in
  let routers_in d =
    if is_transit d then p.routers_per_transit else p.routers_per_stub
  in
  (* global router ids *)
  let router_offset = Array.make (num_domains + 1) 0 in
  for d = 0 to num_domains - 1 do
    router_offset.(d + 1) <- router_offset.(d) + routers_in d
  done;
  let total_routers = router_offset.(num_domains) in
  let routers =
    Array.init total_routers (fun rid ->
        (* find the owning domain by scanning offsets (few domains) *)
        let rec owner d = if router_offset.(d + 1) > rid then d else owner (d + 1) in
        let d = owner 0 in
        let idx = rid - router_offset.(d) in
        {
          rid;
          rdomain = d;
          rindex = idx;
          raddr = Netcore.Addressing.router_address ~domain:d ~index:idx;
        })
  in
  let graph = Graph.create ~n:total_routers in
  let domain_graph = Graph.create ~n:num_domains in
  (* intra-domain topologies *)
  for d = 0 to num_domains - 1 do
    let nd = routers_in d in
    let local = intra_edges rng p.intra_style nd in
    List.iter
      (fun (u, v) ->
        Graph.add_edge graph
          (router_offset.(d) + u)
          (router_offset.(d) + v)
          (weight_of rng p.link_weight))
      local
  done;
  (* inter-domain links *)
  let interlinks = ref [] in
  let link_domains a b rel =
    let ra = router_offset.(a) + Rng.int rng (routers_in a) in
    let rb = router_offset.(b) + Rng.int rng (routers_in b) in
    Graph.add_edge graph ra rb p.interlink_weight;
    if not (Graph.has_edge domain_graph a b) then
      Graph.add_edge domain_graph a b 1.0;
    interlinks :=
      { a_domain = a; b_domain = b; a_router = ra; b_router = rb; rel }
      :: !interlinks
  in
  (* transit core: a full peering mesh — peer-learned routes are not
     re-exported to peers, so anything short of a clique leaves
     non-adjacent tier-1s mutually unreachable. [extra_transit_peering]
     adds parallel peering links (extra border-router pairs). *)
  let nt = p.transit_domains in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      link_domains i j Relationship.Peer;
      if Rng.bernoulli rng p.extra_transit_peering then
        link_domains i j Relationship.Peer
    done
  done;
  (* stubs: customers of their transit; optional multihoming and stub
     peering *)
  for ti = 0 to nt - 1 do
    for si = 0 to p.stubs_per_transit - 1 do
      let stub = nt + (ti * p.stubs_per_transit) + si in
      (* stub's provider is ti: from the stub's view the remote is a
         Provider *)
      link_domains stub ti Relationship.Provider;
      if nt > 1 && Rng.bernoulli rng p.stub_multihoming then begin
        let other = (ti + 1 + Rng.int rng (nt - 1)) mod nt in
        if other <> ti then link_domains stub other Relationship.Provider
      end;
      if si > 0 && Rng.bernoulli rng p.stub_peering then begin
        let sibling = nt + (ti * p.stubs_per_transit) + Rng.int rng si in
        link_domains stub sibling Relationship.Peer
      end
    done
  done;
  (* endhosts *)
  let endhosts =
    Array.init (num_domains * p.endhosts_per_domain) (fun hid ->
        let d = hid / p.endhosts_per_domain in
        let idx = hid mod p.endhosts_per_domain in
        let access = router_offset.(d) + Rng.int rng (routers_in d) in
        {
          hid;
          hdomain = d;
          hindex = idx;
          haddr = Netcore.Addressing.endhost_address ~domain:d ~index:idx;
          access_router = access;
        })
  in
  let domains =
    Array.init num_domains (fun d ->
        {
          did = d;
          prefix = Netcore.Addressing.domain_prefix d;
          router_ids =
            Array.init (routers_in d) (fun i -> router_offset.(d) + i);
          endhost_ids =
            Array.init p.endhosts_per_domain (fun i ->
                (d * p.endhosts_per_domain) + i);
          is_transit = is_transit d;
        })
  in
  { graph; routers; endhosts; domains; interlinks = !interlinks; domain_graph }

type domain_spec = { routers : int; endhosts : int; transit : bool }
type link_spec = { a : int; b : int; rel_of_b : Relationship.t }

let build_custom ?(seed = 1L) ?(intra_style = Ring_chords 2)
    ?(link_weight = Unit_weight) ?(interlink_weight = 1.0) specs links =
  let num_domains = Array.length specs in
  Array.iter
    (fun s ->
      if s.routers <= 0 then invalid_arg "Internet.build_custom: empty domain")
    specs;
  List.iter
    (fun l ->
      if l.a < 0 || l.a >= num_domains || l.b < 0 || l.b >= num_domains || l.a = l.b
      then invalid_arg "Internet.build_custom: bad link endpoints")
    links;
  let rng = Rng.create seed in
  let router_offset = Array.make (num_domains + 1) 0 in
  for d = 0 to num_domains - 1 do
    router_offset.(d + 1) <- router_offset.(d) + specs.(d).routers
  done;
  let total_routers = router_offset.(num_domains) in
  let routers =
    Array.init total_routers (fun rid ->
        let rec owner d = if router_offset.(d + 1) > rid then d else owner (d + 1) in
        let d = owner 0 in
        let idx = rid - router_offset.(d) in
        {
          rid;
          rdomain = d;
          rindex = idx;
          raddr = Netcore.Addressing.router_address ~domain:d ~index:idx;
        })
  in
  let graph = Graph.create ~n:total_routers in
  let domain_graph = Graph.create ~n:num_domains in
  for d = 0 to num_domains - 1 do
    let local = intra_edges rng intra_style specs.(d).routers in
    List.iter
      (fun (u, v) ->
        Graph.add_edge graph
          (router_offset.(d) + u)
          (router_offset.(d) + v)
          (weight_of rng link_weight))
      local
  done;
  let interlinks =
    List.map
      (fun l ->
        let ra = router_offset.(l.a) + Rng.int rng specs.(l.a).routers in
        let rb = router_offset.(l.b) + Rng.int rng specs.(l.b).routers in
        Graph.add_edge graph ra rb interlink_weight;
        if not (Graph.has_edge domain_graph l.a l.b) then
          Graph.add_edge domain_graph l.a l.b 1.0;
        { a_domain = l.a; b_domain = l.b; a_router = ra; b_router = rb; rel = l.rel_of_b })
      links
  in
  let endhost_offset = Array.make (num_domains + 1) 0 in
  for d = 0 to num_domains - 1 do
    endhost_offset.(d + 1) <- endhost_offset.(d) + specs.(d).endhosts
  done;
  let endhosts =
    Array.init endhost_offset.(num_domains) (fun hid ->
        let rec owner d = if endhost_offset.(d + 1) > hid then d else owner (d + 1) in
        let d = owner 0 in
        let idx = hid - endhost_offset.(d) in
        {
          hid;
          hdomain = d;
          hindex = idx;
          haddr = Netcore.Addressing.endhost_address ~domain:d ~index:idx;
          access_router = router_offset.(d) + Rng.int rng specs.(d).routers;
        })
  in
  let domains =
    Array.init num_domains (fun d ->
        {
          did = d;
          prefix = Netcore.Addressing.domain_prefix d;
          router_ids = Array.init specs.(d).routers (fun i -> router_offset.(d) + i);
          endhost_ids =
            Array.init specs.(d).endhosts (fun i -> endhost_offset.(d) + i);
          is_transit = specs.(d).transit;
        })
  in
  { graph; routers; endhosts; domains; interlinks; domain_graph }

type ba_params = {
  ba_domains : int;
  ba_seed_clique : int;
  ba_attach : int;
  ba_routers_core : int;
  ba_routers_edge : int;
  ba_endhosts_per_domain : int;
  ba_sibling_peering : float;
  ba_seed : int64;
}

let default_ba_params =
  {
    ba_domains = 30;
    ba_seed_clique = 3;
    ba_attach = 2;
    ba_routers_core = 10;
    ba_routers_edge = 5;
    ba_endhosts_per_domain = 4;
    ba_sibling_peering = 0.15;
    ba_seed = 42L;
  }

let build_ba p =
  if p.ba_seed_clique < 2 || p.ba_domains <= p.ba_seed_clique then
    invalid_arg "Internet.build_ba: need a clique and at least one newcomer";
  if p.ba_attach < 1 then invalid_arg "Internet.build_ba: attach >= 1";
  let rng = Rng.create p.ba_seed in
  (* degree-proportional provider choice over already-joined domains *)
  let degree = Array.make p.ba_domains 0 in
  let links = ref [] in
  let add_link a b rel =
    degree.(a) <- degree.(a) + 1;
    degree.(b) <- degree.(b) + 1;
    links := { a; b; rel_of_b = rel } :: !links
  in
  for i = 0 to p.ba_seed_clique - 1 do
    for j = i + 1 to p.ba_seed_clique - 1 do
      add_link i j Relationship.Peer
    done
  done;
  for d = p.ba_seed_clique to p.ba_domains - 1 do
    let chosen = ref [] in
    let attach = min p.ba_attach d in
    while List.length !chosen < attach do
      (* roulette over degree among domains < d *)
      let total = ref 0 in
      for x = 0 to d - 1 do
        if not (List.mem x !chosen) then total := !total + degree.(x)
      done;
      if !total = 0 then chosen := 0 :: !chosen
      else begin
        let pick = Rng.int rng !total in
        let acc = ref 0 and found = ref (-1) in
        for x = 0 to d - 1 do
          if !found < 0 && not (List.mem x !chosen) then begin
            acc := !acc + degree.(x);
            if pick < !acc then found := x
          end
        done;
        chosen := (if !found < 0 then 0 else !found) :: !chosen
      end
    done;
    List.iter (fun provider -> add_link d provider Relationship.Provider)
      (List.sort_uniq Int.compare !chosen);
    (* occasional lateral peering with a recent arrival *)
    if d > p.ba_seed_clique && Rng.bernoulli rng p.ba_sibling_peering then begin
      let peer = p.ba_seed_clique + Rng.int rng (d - p.ba_seed_clique) in
      if peer <> d then add_link d peer Relationship.Peer
    end
  done;
  let specs =
    Array.init p.ba_domains (fun d ->
        {
          routers = (if d < p.ba_seed_clique then p.ba_routers_core else p.ba_routers_edge);
          endhosts = p.ba_endhosts_per_domain;
          transit = d < p.ba_seed_clique;
        })
  in
  build_custom ~seed:(Rng.int64 rng) specs (List.rev !links)

let small_example () =
  build
    {
      default_params with
      transit_domains = 2;
      stubs_per_transit = 1;
      routers_per_transit = 4;
      routers_per_stub = 3;
      endhosts_per_domain = 2;
      extra_transit_peering = 0.0;
      stub_multihoming = 0.0;
      stub_peering = 0.0;
      seed = 7L;
    }

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok = Ok () in
  let check_router acc r =
    match acc with
    | Error _ -> acc
    | Ok () ->
        if r.rid < 0 || r.rid >= num_routers t then fail "router id %d out of range" r.rid
        else if r.rdomain < 0 || r.rdomain >= num_domains t then
          fail "router %d: bad domain" r.rid
        else if
          not
            (Netcore.Ipv4.equal r.raddr
               (Netcore.Addressing.router_address ~domain:r.rdomain ~index:r.rindex))
        then fail "router %d: address off-plan" r.rid
        else if not (Array.exists (fun id -> id = r.rid) t.domains.(r.rdomain).router_ids)
        then fail "router %d missing from its domain" r.rid
        else ok
  in
  let result = Array.fold_left check_router ok t.routers in
  let result =
    Array.fold_left
      (fun acc h ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if t.routers.(h.access_router).rdomain <> h.hdomain then
              fail "endhost %d: access router outside its domain" h.hid
            else ok)
      result t.endhosts
  in
  let result =
    List.fold_left
      (fun acc l ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if t.routers.(l.a_router).rdomain <> l.a_domain then
              fail "interlink: a_router not in a_domain"
            else if t.routers.(l.b_router).rdomain <> l.b_domain then
              fail "interlink: b_router not in b_domain"
            else if not (Graph.has_edge t.graph l.a_router l.b_router) then
              fail "interlink missing from router graph"
            else ok)
      result t.interlinks
  in
  match result with
  | Error _ as e -> e
  | Ok () ->
      (* intra-domain connectivity: restrict the graph to each domain *)
      let intra_ok d =
        let ids = d.router_ids in
        let index_of = Hashtbl.create (Array.length ids) in
        Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
        let sub = Graph.create ~n:(Array.length ids) in
        Array.iter
          (fun id ->
            Graph.iter_neighbors t.graph id (fun nb w ->
                match Hashtbl.find_opt index_of nb with
                | Some j when t.routers.(nb).rdomain = d.did ->
                    let i = Hashtbl.find index_of id in
                    if i < j then Graph.add_edge sub i j w
                | _ -> ()))
          ids;
        Graph.is_connected sub
      in
      if Array.for_all intra_ok t.domains then
        if Graph.is_connected t.graph then Ok ()
        else Error "router graph disconnected"
      else Error "a domain's internal topology is disconnected"
