type t = { adj : (int, float) Hashtbl.t array; mutable edge_count : int }

let create ~n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { adj = Array.init n (fun _ -> Hashtbl.create 4); edge_count = 0 }

let n g = Array.length g.adj

let check_node g v name =
  if v < 0 || v >= n g then invalid_arg (name ^ ": node out of range")

let add_edge g u v w =
  check_node g u "Graph.add_edge";
  check_node g v "Graph.add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w <= 0.0 then invalid_arg "Graph.add_edge: non-positive weight";
  if not (Hashtbl.mem g.adj.(u) v) then g.edge_count <- g.edge_count + 1;
  Hashtbl.replace g.adj.(u) v w;
  Hashtbl.replace g.adj.(v) u w

let remove_edge g u v =
  check_node g u "Graph.remove_edge";
  check_node g v "Graph.remove_edge";
  if Hashtbl.mem g.adj.(u) v then begin
    g.edge_count <- g.edge_count - 1;
    Hashtbl.remove g.adj.(u) v;
    Hashtbl.remove g.adj.(v) u
  end

let has_edge g u v =
  check_node g u "Graph.has_edge";
  check_node g v "Graph.has_edge";
  Hashtbl.mem g.adj.(u) v

let edge_weight g u v =
  check_node g u "Graph.edge_weight";
  check_node g v "Graph.edge_weight";
  Hashtbl.find_opt g.adj.(u) v

let degree g v =
  check_node g v "Graph.degree";
  Hashtbl.length g.adj.(v)

let neighbors g v =
  check_node g v "Graph.neighbors";
  Hashtbl.fold (fun u w acc -> (u, w) :: acc) g.adj.(v) []
  (* neighbor ids are the table keys, so they are unique *)
  |> List.sort (fun (u, _) (w, _) -> Int.compare u w)

let iter_neighbors g v f =
  check_node g v "Graph.iter_neighbors";
  Hashtbl.iter f g.adj.(v)

let edge_count g = g.edge_count

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun u tbl ->
      Hashtbl.iter (fun v w -> if u < v then acc := (u, v, w) :: !acc) tbl)
    g.adj;
  (* endpoint pairs are unique, so the weight never has to break ties *)
  List.sort
    (fun (a, b, _) (c, d, _) ->
      match Int.compare a c with 0 -> Int.compare b d | n -> n)
    !acc

let copy g =
  { adj = Array.map Hashtbl.copy g.adj; edge_count = g.edge_count }

let component_ids g =
  let ids = Array.make (n g) (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for v = 0 to n g - 1 do
    if ids.(v) < 0 then begin
      let id = !next in
      incr next;
      Stack.push v stack;
      ids.(v) <- id;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Hashtbl.iter
          (fun w _ ->
            if ids.(w) < 0 then begin
              ids.(w) <- id;
              Stack.push w stack
            end)
          g.adj.(u)
      done
    end
  done;
  ids

let components g =
  let ids = component_ids g in
  let count = Array.fold_left (fun m id -> max m (id + 1)) 0 ids in
  let buckets = Array.make count [] in
  for v = n g - 1 downto 0 do
    buckets.(ids.(v)) <- v :: buckets.(ids.(v))
  done;
  Array.to_list buckets

let is_connected g =
  match components g with [] | [ _ ] -> true | _ -> false

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" (n g) g.edge_count
