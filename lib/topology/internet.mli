(** The simulated multi-provider internet.

    A router-level graph partitioned into domains (ISPs/ASes) that are
    linked by inter-domain edges carrying Gao–Rexford relationships,
    plus endhosts attached to access routers. This is the substrate on
    which the paper's anycast redirection (§3.2) and vN-Bones (§3.3)
    are deployed. *)

type router = {
  rid : int;  (** global router id = node in {!graph} *)
  rdomain : int;
  rindex : int;  (** index within the domain *)
  raddr : Netcore.Ipv4.t;
}

type endhost = {
  hid : int;
  hdomain : int;
  hindex : int;
  haddr : Netcore.Ipv4.t;
  access_router : int;  (** global router id of the attachment point *)
}

type domain = {
  did : int;
  prefix : Netcore.Prefix.t;  (** the /16 this domain originates *)
  router_ids : int array;  (** global ids, in domain-index order *)
  endhost_ids : int array;
  is_transit : bool;
}

type interlink = {
  a_domain : int;
  b_domain : int;
  a_router : int;  (** border router on the [a] side, global id *)
  b_router : int;
  rel : Relationship.t;
      (** role of [b_domain] as seen from [a_domain]; e.g. [Provider]
          when [a] buys transit from [b] *)
}

type t = {
  graph : Graph.t;  (** router-level graph: intra + inter-domain links *)
  routers : router array;
  endhosts : endhost array;
  domains : domain array;
  interlinks : interlink list;
  domain_graph : Graph.t;  (** AS-level graph: one node per domain *)
}

(** {1 Accessors} *)

val num_domains : t -> int
val num_routers : t -> int
val router : t -> int -> router
val domain : t -> int -> domain
val endhost : t -> int -> endhost
val router_of_addr : t -> Netcore.Ipv4.t -> router option
val endhost_of_addr : t -> Netcore.Ipv4.t -> endhost option

val domain_of_addr : t -> Netcore.Ipv4.t -> int option
(** The domain originating the longest matching domain prefix, if any. *)

val relationship : t -> of_:int -> to_:int -> Relationship.t option
(** Role of [to_] as seen from [of_], when the two domains are
    directly linked. *)

val neighbor_domains : t -> int -> (int * Relationship.t) list
(** Directly linked domains with their role seen from the argument. *)

val border_routers : t -> int -> int list
(** Global ids of the routers of a domain that terminate at least one
    inter-domain link. *)

val interlinks_between : t -> int -> int -> interlink list
(** All inter-domain links between two domains (in either orientation,
    normalised so that [a_domain] is the first argument). *)

val routers_of_domain : t -> int -> router list

(** {1 Construction} *)

type intra_style =
  | Ring_chords of int  (** ring plus [k] random chords *)
  | Waxman of float * float  (** Waxman alpha, beta; repaired to connected *)
  | Erdos_renyi of float  (** edge probability; repaired to connected *)

type link_weight = Unit_weight | Uniform_weight of float * float

type params = {
  transit_domains : int;
  stubs_per_transit : int;
  routers_per_transit : int;
  routers_per_stub : int;
  endhosts_per_domain : int;
  extra_transit_peering : float;
      (** probability of a second, parallel peering link (a distinct
          border-router pair) between each transit pair, beyond the
          full-mesh transit core *)
  stub_multihoming : float;  (** probability a stub buys a second provider *)
  stub_peering : float;
      (** probability of a peer link between stubs sharing a provider *)
  intra_style : intra_style;
  link_weight : link_weight;
  interlink_weight : float;  (** weight of inter-domain edges *)
  seed : int64;
}

val default_params : params
(** 4 transit domains, 6 stubs each, 12/6 routers, 4 endhosts per
    domain, ring+chords internals, unit weights, seed 42. *)

val build : params -> t
(** Generate a transit–stub internet. The result is connected at both
    the router and the domain level, and every domain's internal
    topology is connected.
    @raise Invalid_argument on non-positive sizes. *)

type domain_spec = { routers : int; endhosts : int; transit : bool }

type link_spec = {
  a : int;
  b : int;
  rel_of_b : Relationship.t;
      (** role of domain [b] as seen from domain [a] — e.g. [Provider]
          when [a] buys transit from [b] *)
}

val build_custom :
  ?seed:int64 ->
  ?intra_style:intra_style ->
  ?link_weight:link_weight ->
  ?interlink_weight:float ->
  domain_spec array ->
  link_spec list ->
  t
(** Build an internet with an explicit domain-level topology — used to
    replicate the paper's figure scenarios exactly. Domain ids are the
    array indices; border routers for each link are drawn
    deterministically from the seed.
    @raise Invalid_argument on out-of-range link endpoints or empty
    domains. *)

type ba_params = {
  ba_domains : int;  (** total domains *)
  ba_seed_clique : int;  (** initial fully-peered core (the tier-1s) *)
  ba_attach : int;  (** providers each newcomer buys transit from *)
  ba_routers_core : int;
  ba_routers_edge : int;
  ba_endhosts_per_domain : int;
  ba_sibling_peering : float;
      (** probability a newcomer also peers with one same-degree domain *)
  ba_seed : int64;
}

val default_ba_params : ba_params
(** 30 domains, 3-clique core, 2 providers each, seed 42. *)

val build_ba : ba_params -> t
(** Preferential-attachment (Barabási–Albert style) internet: domains
    join one by one and buy transit from existing domains chosen with
    probability proportional to degree, yielding the heavy-tailed
    provider degree distribution of the measured AS graph. The core
    clique peers fully, so the policy graph is valley-free-connected.
    Used to check that the reproduction's claims are not artifacts of
    the transit-stub model (experiment E23). *)

val small_example : unit -> t
(** A tiny fixed internet (4 domains) handy for unit tests. *)

val check_invariants : t -> (unit, string) result
(** Structural sanity: ids consistent, addresses match the plan, intra
    connectivity, interlink endpoints in the right domains. Used by the
    test-suite. *)
