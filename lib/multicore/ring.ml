type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t; (* next slot to pop; written only by the consumer *)
  tail : int Atomic.t; (* next slot to push; written only by the producer *)
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let n = pow2 1 in
  {
    buf = Array.make n dummy;
    mask = n - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Array.length t.buf

(* tail and head are read in two separate loads, not a snapshot: a
   cross-domain caller can observe a tail from before a concurrent push
   paired with a head from after a concurrent pop (or vice versa), so
   the raw difference can transiently be negative or exceed the
   capacity. Clamp into [0, capacity] — the only honest answer a
   non-owner can give. Each endpoint's own side stays exact. *)
let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0
  else if n > Array.length t.buf then Array.length t.buf
  else n

let is_empty t = length t = 0

(* Exact from the producer's domain: head only advances, so a stale
   head read can only understate the free room, never overstate it —
   the credit never over-promises. *)
let credits t = Array.length t.buf - length t

(* Publication order is what makes this safe across domains: the slot
   write happens before the Atomic.set on tail (a seq_cst store), and
   the consumer reads tail (seq_cst load) before touching the slot.
   Head mirrors the argument for slot reuse in the other direction. *)
let push t x =
  let tl = Atomic.get t.tail in
  let occ = tl - Atomic.get t.head in
  (* producer owns tail, and head only advances: a stale head read can
     only overstate occupancy, never make it negative *)
  assert (occ >= 0);
  if occ >= Array.length t.buf then false
  else begin
    t.buf.(tl land t.mask) <- x;
    Atomic.set t.tail (tl + 1);
    true
  end

let pop t =
  let hd = Atomic.get t.head in
  let occ = Atomic.get t.tail - hd in
  (* consumer owns head and never advances it past an observed tail;
     tail is monotonic, so the occupancy it computes is never negative
     and never exceeds what the producer was allowed to publish *)
  assert (occ >= 0 && occ <= Array.length t.buf);
  if occ <= 0 then invalid_arg "Ring.pop: empty";
  let i = hd land t.mask in
  let x = t.buf.(i) in
  (* drop the slot's reference so popped elements don't leak through
     the ring; the dummy write also keeps pop allocation-free *)
  t.buf.(i) <- t.dummy;
  Atomic.set t.head (hd + 1);
  x
