type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t; (* next slot to pop; written only by the consumer *)
  tail : int Atomic.t; (* next slot to push; written only by the producer *)
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let n = pow2 1 in
  {
    buf = Array.make n dummy;
    mask = n - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Array.length t.buf
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0

(* Publication order is what makes this safe across domains: the slot
   write happens before the Atomic.set on tail (a seq_cst store), and
   the consumer reads tail (seq_cst load) before touching the slot.
   Head mirrors the argument for slot reuse in the other direction. *)
let push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head >= Array.length t.buf then false
  else begin
    t.buf.(tl land t.mask) <- x;
    Atomic.set t.tail (tl + 1);
    true
  end

let pop t =
  let hd = Atomic.get t.head in
  if Atomic.get t.tail - hd <= 0 then invalid_arg "Ring.pop: empty";
  let i = hd land t.mask in
  let x = t.buf.(i) in
  (* drop the slot's reference so popped elements don't leak through
     the ring; the dummy write also keeps pop allocation-free *)
  t.buf.(i) <- t.dummy;
  Atomic.set t.head (hd + 1);
  x
