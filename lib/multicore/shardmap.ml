type t = { routers : int; shards : int }

let create ~routers ~shards =
  if routers <= 0 then invalid_arg "Shardmap.create: routers must be positive";
  if shards <= 0 || shards > routers then
    invalid_arg "Shardmap.create: shards must be in [1, routers]";
  { routers; shards }

let routers t = t.routers
let shards t = t.shards

(* Contiguous blocks: router ids are numbered per topology domain
   ({!Topology.Internet} hands out dense per-domain ranges), so block
   assignment keeps intra-domain hops shard-local. The formula depends
   only on (routers, shards) — never on a seed — so the assignment is
   identical across runs and shard counts divide the same id space. *)
let shard_of t r = r * t.shards / t.routers

let lo t s = ((s * t.routers) + t.shards - 1) / t.shards
let range t s =
  if s < 0 || s >= t.shards then invalid_arg "Shardmap.range: bad shard";
  (lo t s, lo t (s + 1))
