(** One worker of the sharded data plane: a block of routers, their
    flow caches and telemetry, and the run loop that forwards packets
    until the pool-wide live count drains (DESIGN.md §11).

    Each shard owns every piece of state it writes — caches for its
    router block, its own {!Dataplane.Telemetry}, arena, rng stream
    and counters — which is what lets the evolvelint domain-safety
    pack prove the sharded hot path race-free from the {!run} root,
    the same §9.4 proof that covers the serial pump. Routing state is
    shared read-only: compiled {!Simcore.Fib} snapshots (§3.2's
    per-router data-plane state) are persistent maps, safe across
    domains without locks. *)

type msg
(** A cross-shard handoff: an arena view plus pre-peeked header
    fields, published through a {!Ring} to the owning shard. *)

val dummy_msg : msg
(** Filler for empty ring slots ({!Ring.create}'s [dummy]). *)

type inj = { i_packet : Netcore.Packet.t; i_entry : int; i_count : int }
(** A pending injection: [i_count] byte-identical packets of one flow,
    entering at router [i_entry]. Encoded into the shard's arena once. *)

type t

val create :
  ?spill_cap:int ->
  ?shed_eager:bool ->
  ?inject_per_pass:int ->
  sid:int ->
  map:Shardmap.t ->
  tables:Simcore.Fib.action Netcore.Lpm.t array ->
  cache_slots:int ->
  rng:Topology.Rng.t ->
  live:int Atomic.t ->
  unit ->
  t
(** A worker for shard [sid] of [map]. [tables] is the shared FIB
    snapshot array indexed by router id; [live] is the pool-wide
    in-flight packet count this worker decrements on every terminal
    outcome. Rings are wired separately via {!set_channels} once all
    shards exist.

    [spill_cap] (default 65536) bounds the spill buffer that holds
    handoffs refused by a full ring — beyond it the shard {e sheds}
    (DESIGN.md §13) instead of growing memory without bound. A flowlet
    never splits, so a batch whose flow count stays below [spill_cap]
    can never shed and the pool stays bit-deterministic; the default
    clears every experiment in the suite. [shed_eager] (default false)
    additionally sheds data-class handoffs at the producer as soon as
    credits exhaust — the consumer advertises congestion
    ({!congested_flag}) and the spill is past its 3/4 watermark —
    which bounds latency under sustained overload at the price of
    timing-dependent drop counts; only overload drills and tests
    enable it. [inject_per_pass] (default unbounded) paces fresh-flow
    injections: at most that many staged flows enter per scheduling
    pass, turning a batch into a multi-round arrival process — the
    slow-consumer drill's demand model; the default drains the whole
    queue in the first pass, the historical behaviour every
    experiment relies on for bit-reproducibility.
    @raise Invalid_argument when [spill_cap] or [inject_per_pass] is
    not positive. *)

val set_channels : t -> inbox:msg Ring.t array -> outbox:msg Ring.t array -> unit
(** Wire the per-pair rings: [inbox.(p)] carries handoffs from shard
    [p] to this one, [outbox.(c)] to shard [c]. Setup-time only. *)

val set_doorbells :
  t ->
  peer_asleep:bool Atomic.t array ->
  peer_congested:bool Atomic.t array ->
  peer_wake:Unix.file_descr array ->
  unit
(** Wire the wakeup fabric: [peer_asleep.(c)] is shard [c]'s published
    sleep flag, [peer_congested.(c)] its published congestion signal
    (the credit/watermark protocol of DESIGN.md §13), and
    [peer_wake.(c)] the write end of its doorbell pipe. A producer
    that pushes a handoff to a sleeping consumer writes one byte
    there, so idle workers block in [select] instead of burning timer
    slack — the flag is re-read after the ring push (both seq_cst),
    which closes the lost-wakeup race. Setup-time only. *)

val asleep_flag : t -> bool Atomic.t
(** This shard's published sleep flag (for {!set_doorbells} wiring). *)

val congested_flag : t -> bool Atomic.t
(** This shard's published congestion signal (for {!set_doorbells}
    wiring): set when its inbox backlog crosses the 3/4 high
    watermark, cleared with hysteresis below the 1/4 low one. A
    producer reads its peer's flag as "credits exhausted". *)

val dead_flag : t -> bool Atomic.t
(** Published by a crashing worker as it exits its run loop; the
    supervisor ({!Domainpool.run}) detects it, joins the domain,
    {!revive}s the shard and respawns. *)

val wake_fd : t -> Unix.file_descr
(** Write end of this shard's doorbell pipe (for {!set_doorbells}). *)

val close : t -> unit
(** Release the doorbell pipe's file descriptors. Call once the worker
    will never {!run} again; the pool's [close] does this for every
    shard. *)

val sid : t -> int

val telemetry : t -> Dataplane.Telemetry.t
(** This shard's own counters; merge across shards in fixed order for
    the pool-wide view (commutative — see {!Domainpool.telemetry}). *)

val crossings : t -> int
(** Handoffs this shard initiated (lifetime total). *)

val arena : t -> Netcore.Arena.t
(** The slab this shard encodes injected packets into. The pool
    rewinds and resizes it between batches, never mid-flight. *)

val rng : t -> Topology.Rng.t
(** The shard's private randomness stream, split from the pool seed —
    the only randomness a worker may use (CLAUDE.md). *)

val enqueue : t -> inj -> unit
(** Queue a flow for injection. Setup-time only (before {!run}). *)

val overflow_high_water : t -> int
(** Most handoffs the spill buffer ever held at once (lifetime). *)

val overflow_len : t -> int
(** Handoffs in the spill buffer right now. *)

val overflow_cap : t -> int
(** The configured spill bound ([spill_cap]); [overflow_high_water]
    can never exceed it — the boundedness satellite's assertion. *)

val shed : t -> int
(** Packets this shard deliberately shed (lifetime total), already
    recorded per class in its telemetry and retired from the live
    count. *)

val handled : t -> int
(** Flowlet handlings (arrivals plus injections) this shard performed
    — the deterministic clock {!arm_crash} counts in. *)

(** {2 Deterministic crash injection and supervision} (DESIGN.md §13) *)

val arm_crash : t -> after:int -> unit
(** Crash this worker right before its [after+1]-th next handling:
    it publishes {!dead_flag} and exits {!run} between flowlets, so
    the message that was next is still queued and nothing in flight
    is lost.
    @raise Invalid_argument when [after] is negative. *)

val crash_armed : t -> bool

val revive : t -> unit
(** Supervisor side: clear the crash and the dead flag, and drop the
    only non-surviving state — the flow caches, which rebuild warm on
    demand from the shared immutable FIB snapshots. Forwarding
    decisions after a revive are identical to a never-crashed run;
    only cache statistics show the restart. Call only when the worker
    is not running (after joining its domain). *)

val pass : t -> bool
(** One scheduling pass of the run loop (publish congestion, drain
    arrivals, retry stalled handoffs, inject pending flows); returns
    whether anything moved. {!Domainpool.run_cooperative} interleaves
    shards with it deterministically on one domain; {!run} is the
    parallel driver. *)

val run : t -> unit
(** The worker loop: drain cross-shard arrivals, retry stalled
    handoffs, inject pending flows; exit when the pool-wide live
    count reaches zero. Safe to run one domain per shard — this is
    the root the evolvelint domain-safety and hot-path-allocation
    packs scan. Idles politely — a short spin, then blocking on the
    doorbell pipe with a backstop timeout — so worker counts above the
    core count still make progress: sleepers stop stealing timeslices
    and wake the moment a producer hands them traffic. *)

(**/**)

val naps : t -> int
val passes : t -> int
(** Scheduling diagnostics: idle sleeps taken and main-loop passes,
    lifetime totals. *)
