(** The sharded packet pump: one OCaml 5 domain per shard, rings in
    between, verdicts identical to the serial {!Dataplane.Pump}.

    This is the ROADMAP's millions-of-users unlock: the paper's
    Option-1/Option-2 comparison (§3.2, §3.3.2) only carries weight at
    realistic traffic volumes, and a single pump tops out at a couple
    of million packets per second. The pool shards the router id space
    with a fixed {!Shardmap}, gives every {!Shard} its own caches,
    telemetry, arena and rng stream, and hands packets between shards
    through SPSC {!Ring}s. Determinism survives parallelism because
    everything order-dependent is shard-private and everything shared
    is read-only or commutative — experiment E33 asserts the delivery
    verdict counts are byte-identical for 1/2/4/8 shards on one seed
    (DESIGN.md §11 has the full argument). *)

type t

val create :
  ?cache_slots:int ->
  ?ring_capacity:int ->
  ?spill_cap:int ->
  ?shed_eager:bool ->
  ?inject_per_pass:int ->
  Simcore.Forward.env ->
  shards:int ->
  seed:int64 ->
  t
(** Compile one FIB snapshot of the env's control plane (shared
    read-only by all workers) and stand up [shards] workers with
    [cache_slots] flow-cache slots per router (default 256, as
    {!Dataplane.Pump.create}) and [ring_capacity]-slot handoff rings
    (default 1024). [seed] feeds one {!Topology.Rng} per shard via
    deterministic splits. [spill_cap], [shed_eager] and
    [inject_per_pass] configure each shard's overload behaviour — see
    {!Shard.create}.
    @raise Invalid_argument unless [0 < shards <= routers]. *)

val env : t -> Simcore.Forward.env
val map : t -> Shardmap.t
val num_shards : t -> int

val shard : t -> int -> Shard.t
(** Direct access to a worker, for tests and per-shard telemetry. *)

val run : t -> Dataplane.Workload.flow list -> unit
(** Forward every packet of every flow to a terminal verdict: expand
    flows into per-shard injection queues (by entry router), size the
    arenas, then run one worker per shard — inline for one shard,
    [Domain.spawn]/[join] otherwise. Returns when all packets have
    terminated. Telemetry accumulates across runs, like the pump's.

    When any shard has a crash armed ({!Shard.arm_crash}) the main
    domain becomes a supervisor: it polls the published dead flags,
    joins the exited worker, revives its shard ({!Shard.revive} — flow
    caches rebuild warm from the shared FIB snapshots) and respawns
    it, so the batch always drains. With no crash armed the spawn/join
    path is byte-for-byte the pre-supervision one. *)

val run_cooperative : ?slow:int * int -> t -> Dataplane.Workload.flow list -> int
(** Deterministic single-domain driver: stage the batch, then
    round-robin one {!Shard.pass} per live shard per round until every
    packet terminates; a crashed shard is detected and revived at the
    end of its round. [slow:(victim, period)] starves shard [victim]
    to one pass every [period] rounds — sustained backpressure with
    bit-reproducible spill/shed behaviour, which the slow-consumer
    drill and experiment E37 rely on. Returns the number of rounds. *)

val restarts : t -> int
(** Shard restarts the supervisor performed (all shards, lifetime). *)

val shard_restarts : t -> int -> int
(** Restarts of one shard. *)

val shed : t -> int
(** Packets deliberately shed pool-wide (sum of {!Shard.shed}). *)

val overflow_high_water : t -> int
(** Largest spill-buffer occupancy any shard ever reached. *)

val telemetry : t -> Dataplane.Telemetry.t
(** Pool-wide counters: per-shard telemetries merged in fixed shard
    order. The merge is a commutative field-wise sum, so the result
    is independent of execution interleaving — the heart of E33's
    shard-invariance claim. With one shard this is the shard's own
    telemetry, which equals the serial pump's field for field on the
    same batch (asserted by the test-suite). *)

val crossings : t -> int
(** Total cross-shard handoffs over all runs — the traffic the rings
    carried. Zero with one shard. *)

val close : t -> unit
(** Release every shard's doorbell pipe. Call when the pool will not
    {!run} again (benchmarks and experiments create many pools; the
    descriptors otherwise live until process exit). *)
