(** Fixed router→shard assignment for the sharded data plane.

    The paper's scaling argument (§3.2: per-domain forwarding state,
    evaluated at realistic traffic volumes) needs the pump split
    across cores without giving up determinism. The map is a pure
    function of [(routers, shards)] — seed-independent and identical
    on every run — so experiment E33 can compare shard counts on the
    same workload and require byte-identical verdicts (DESIGN.md
    §11). Assignment is by contiguous id block, which keeps
    intra-domain hops shard-local because {!Topology.Internet} numbers
    routers densely per domain. *)

type t

val create : routers:int -> shards:int -> t
(** @raise Invalid_argument unless [0 < shards <= routers]. *)

val routers : t -> int
val shards : t -> int

val shard_of : t -> int -> int
(** [shard_of t r] is the owning shard of router [r], in
    [\[0, shards)]. Total and monotone over [\[0, routers)]. *)

val range : t -> int -> int * int
(** [range t s] is the half-open router block [\[lo, hi)] owned by
    shard [s]; blocks partition [\[0, routers)] in order.
    @raise Invalid_argument when [s] is not a shard index. *)
