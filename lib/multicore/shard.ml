module Wire = Netcore.Wire
module Arena = Netcore.Arena
module Ipv4 = Netcore.Ipv4
module Lpm = Netcore.Lpm
module Packet = Netcore.Packet
module Rng = Topology.Rng
module Fib = Simcore.Fib
module Flowcache = Dataplane.Flowcache
module Telemetry = Dataplane.Telemetry

(* A cross-shard handoff: an (off, len) view into the producing
   shard's arena plus the pre-peeked header fields the next hop
   needs. Immutable — published through a Ring, read by one consumer. *)
type msg = {
  m_buf : Arena.buf;
  m_off : int;
  m_len : int;
  m_dst : Ipv4.t;
  m_ttl : int;
  m_router : int; (* next hop — owned by the receiving shard *)
  m_cls : Telemetry.cls;
  m_encap : int;
  m_count : int; (* flowlet width: byte-identical packets in this handoff *)
}

let dummy_msg =
  {
    m_buf = Arena.buf (Arena.create ~bytes:0);
    m_off = 0;
    m_len = 0;
    m_dst = Ipv4.of_int 0;
    m_ttl = 0;
    m_router = 0;
    m_cls = Telemetry.Native;
    m_encap = 0;
    m_count = 0;
  }

(* A pending injection: one flow's packet encoded once, walked
   [i_count] times (the packets of a flow are byte-identical). *)
type inj = { i_packet : Packet.t; i_entry : int; i_count : int }

type t = {
  sid : int;
  lo : int;
  hi : int;
  map : Shardmap.t;
  tables : Fib.action Lpm.t array;
      (* shared read-only snapshots — Lpm is persistent, safe across domains *)
  caches : Fib.action Flowcache.t array; (* own block only, index [r - lo] *)
  telemetry : Telemetry.t;
  rng : Rng.t; (* per-shard stream, split from the pool seed *)
  arena : Arena.t;
  pending : inj Queue.t;
  (* The spill buffer: handoffs that hit a full ring wait here, as a
     bounded circular FIFO pre-allocated at [spill_cap] (no growth on
     the hot path). When it too is full the shard sheds — drop-tail
     for data, newest-data eviction to make room for control
     (DESIGN.md §13). *)
  spill : msg array;
  inject_per_pass : int;
      (* fresh-flow injections admitted per pass: bounded pacing turns
         the staged batch into a multi-round arrival process (the
         slow-consumer drill's demand model); [max_int] = drain the
         queue in one pass, the historical behaviour *)
  spill_cap : int;
  spill_hi : int; (* eager-shed watermark: 3/4 of [spill_cap] *)
  mutable spill_head : int;
  mutable spill_len : int;
  mutable spill_hw : int; (* high-water of [spill_len] *)
  mutable shed_count : int; (* packets deliberately shed, cumulative *)
  shed_eager : bool; (* shed at the producer when credits exhaust *)
  mutable inbox : msg Ring.t array; (* inbox.(p): ring from producer shard p *)
  mutable outbox : msg Ring.t array; (* outbox.(c): ring to consumer shard c *)
  mutable cong_hi : int; (* inbox-backlog watermarks for [congested] *)
  mutable cong_lo : int;
  live : int Atomic.t; (* pool-wide in-flight packets *)
  asleep : bool Atomic.t; (* published before blocking on the doorbell *)
  congested : bool Atomic.t;
      (* published credit signal: this consumer's inbox backlog crossed
         the high watermark (hysteresis down at the low one) *)
  dead : bool Atomic.t; (* published by a crashing worker, cleared by revive *)
  mutable crash_at : int; (* crash after this many handlings; -1 = disarmed *)
  mutable handled : int; (* flowlet handlings (arrivals + injections) *)
  wake_r : Unix.file_descr; (* this worker blocks here when idle *)
  wake_w : Unix.file_descr; (* peers ring it to wake this worker *)
  bell : Bytes.t; (* scratch byte for doorbell writes/drains *)
  mutable peer_asleep : bool Atomic.t array;
  mutable peer_congested : bool Atomic.t array;
  mutable peer_wake : Unix.file_descr array;
  mutable crossings : int;
  mutable naps : int;
  mutable passes : int;
}

let create ?(spill_cap = 65536) ?(shed_eager = false)
    ?(inject_per_pass = max_int) ~sid ~map ~tables ~cache_slots ~rng ~live () =
  if spill_cap <= 0 then invalid_arg "Shard.create: spill_cap must be positive";
  if inject_per_pass <= 0 then
    invalid_arg "Shard.create: inject_per_pass must be positive";
  let lo, hi = Shardmap.range map sid in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    sid;
    lo;
    hi;
    map;
    tables;
    caches = Array.init (hi - lo) (fun _ -> Flowcache.create ~slots:cache_slots);
    telemetry = Telemetry.create ~routers:(Shardmap.routers map);
    rng;
    arena = Arena.create ~bytes:0;
    pending = Queue.create ();
    spill = Array.make spill_cap dummy_msg;
    inject_per_pass;
    spill_cap;
    spill_hi = max 1 (spill_cap * 3 / 4);
    spill_head = 0;
    spill_len = 0;
    spill_hw = 0;
    shed_count = 0;
    shed_eager;
    inbox = [||];
    outbox = [||];
    cong_hi = max_int;
    cong_lo = 0;
    live;
    asleep = Atomic.make false;
    congested = Atomic.make false;
    dead = Atomic.make false;
    crash_at = -1;
    handled = 0;
    wake_r;
    wake_w;
    bell = Bytes.make 64 '!';
    peer_asleep = [||];
    peer_congested = [||];
    peer_wake = [||];
    crossings = 0;
    naps = 0;
    passes = 0;
  }

let set_channels t ~inbox ~outbox =
  t.inbox <- inbox;
  t.outbox <- outbox;
  (* watermarks over the total inbox capacity (excluding the self
     ring, which is never used): congested above 3/4, clear below 1/4 *)
  let total = ref 0 in
  Array.iteri
    (fun p r -> if p <> t.sid then total := !total + Ring.capacity r)
    inbox;
  t.cong_hi <- max 1 (!total * 3 / 4);
  t.cong_lo <- !total / 4

let set_doorbells t ~peer_asleep ~peer_congested ~peer_wake =
  t.peer_asleep <- peer_asleep;
  t.peer_congested <- peer_congested;
  t.peer_wake <- peer_wake

let asleep_flag t = t.asleep
let congested_flag t = t.congested
let dead_flag t = t.dead
let wake_fd t = t.wake_w

let close t =
  Unix.close t.wake_r;
  Unix.close t.wake_w

let naps t = t.naps
let passes t = t.passes
let sid t = t.sid
let telemetry t = t.telemetry
let crossings t = t.crossings
let arena t = t.arena
let rng t = t.rng
let enqueue t j = Queue.add j t.pending
let overflow_high_water t = t.spill_hw
let overflow_len t = t.spill_len
let overflow_cap t = t.spill_cap
let shed t = t.shed_count
let handled t = t.handled

(* --- deterministic crash injection (DESIGN.md §13) ------------------- *)

let arm_crash t ~after =
  if after < 0 then invalid_arg "Shard.arm_crash: after must be >= 0";
  t.crash_at <- t.handled + after

let crash_armed t = t.crash_at >= 0
let crash_due t = t.crash_at >= 0 && t.handled >= t.crash_at

(* The worker publishes its own death and exits its run loop; nothing
   in flight is lost — the message that would have been handled next
   is still in its ring or queue. *)
let crash_exit t = Atomic.set t.dead true

(* Supervisor side: clear the crash, drop the soft state. The flow
   caches are the only state that does not survive — they rebuild warm
   on demand from the shared immutable FIB snapshots, so post-restart
   forwarding decisions (and verdicts) are identical; only the
   hit/miss statistics show the restart. *)
let revive t =
  Atomic.set t.dead false;
  t.crash_at <- -1;
  Array.iter Flowcache.clear t.caches

(* One forwarding decision at owned router [r] for a flowlet of
   [count] byte-identical packets: probe the flow cache once, account
   for every packet. A miss followed by an insert makes the remaining
   [count - 1] packets hits — exactly the statistics the per-packet
   serial pump records, since nothing else touches this router's cache
   between the packets of one flow (mirrors Pump.lookup_action). *)
let lookup_n st r ~cls ~count dst =
  let c = st.caches.(r - st.lo) in
  match Flowcache.lookup c dst with
  | Some _ as hit ->
      Telemetry.record_cache_n st.telemetry ~router:r ~cls ~hits:count
        ~misses:0;
      hit
  | None -> (
      match Lpm.lookup_value dst st.tables.(r) with
      | Some a as res ->
          Telemetry.record_cache_n st.telemetry ~router:r ~cls
            ~hits:(count - 1) ~misses:1;
          Flowcache.insert c dst a;
          res
      | None ->
          Telemetry.record_cache_n st.telemetry ~router:r ~cls ~hits:0
            ~misses:count;
          None)

(* Ring shard [c]'s doorbell. Nonblocking: a full pipe just means the
   consumer already has plenty of reasons to wake, so the byte can be
   dropped. The asleep flag is re-read after the ring push (both are
   seq_cst), which closes the lost-wakeup race: if the consumer's
   final emptiness check preceded our push, it had already published
   asleep = true, so we see it here and ring. *)
let ring_doorbell st c =
  if Atomic.get st.peer_asleep.(c) then
    try ignore (Unix.write st.peer_wake.(c) st.bell 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* Retire [count] packets from the pool-wide live count; whoever
   drains it to zero wakes every sleeping peer so they can observe
   termination without waiting out their backstop timeout. *)
let retire st count =
  if Atomic.fetch_and_add st.live (-count) = count then
    for c = 0 to Array.length st.peer_wake - 1 do
      if c <> st.sid then ring_doorbell st c
    done

(* --- bounded spill buffer -------------------------------------------- *)

let spill_idx st i =
  let k = st.spill_head + i in
  if k >= st.spill_cap then k - st.spill_cap else k

let spill_append st m =
  st.spill.(spill_idx st st.spill_len) <- m;
  st.spill_len <- st.spill_len + 1;
  if st.spill_len > st.spill_hw then st.spill_hw <- st.spill_len

(* Deliberately drop a flowlet that could not be queued anywhere: the
   packets are accounted as shed at the router that would have handled
   them next, and retired from the live count so the pool terminates. *)
let shed_msg st (m : msg) =
  st.shed_count <- st.shed_count + m.m_count;
  Telemetry.record_shed_n st.telemetry ~router:m.m_router ~cls:m.m_cls
    ~count:m.m_count;
  retire st m.m_count

(* Make room for a control-class message by shedding the newest
   data-class message in the spill (drop precedence: control is never
   shed while any data could be shed instead). Shifting the tail down
   one slot preserves the relative order of every survivor. *)
let evict_newest_data st =
  let victim = ref (-1) in
  let i = ref (st.spill_len - 1) in
  while !victim < 0 && !i >= 0 do
    if st.spill.(spill_idx st !i).m_cls <> Telemetry.Control then victim := !i;
    decr i
  done;
  if !victim < 0 then false
  else begin
    shed_msg st st.spill.(spill_idx st !victim);
    for j = !victim to st.spill_len - 2 do
      st.spill.(spill_idx st j) <- st.spill.(spill_idx st (j + 1))
    done;
    st.spill_len <- st.spill_len - 1;
    st.spill.(spill_idx st st.spill_len) <- dummy_msg;
    true
  end

(* Hand a flowlet to consumer shard [c]: ring first (only when the
   spill is empty, so per-pair FIFO holds), then the spill, then shed.
   With [shed_eager] the producer sheds data early once its credits
   are exhausted — the consumer advertises congestion and the spill is
   past its high watermark — instead of waiting for the spill to fill
   (nondeterministic under real parallelism, so it is opt-in). *)
let offer st c (m : msg) =
  if st.spill_len = 0 && Ring.push st.outbox.(c) m then ring_doorbell st c
  else if
    st.shed_eager
    && m.m_cls <> Telemetry.Control
    && st.spill_len >= st.spill_hi
    && Atomic.get st.peer_congested.(c)
  then shed_msg st m
  else if st.spill_len < st.spill_cap then spill_append st m
  else if m.m_cls = Telemetry.Control && evict_newest_data st then
    spill_append st m
  else shed_msg st m

(* Walk a flowlet — [count] byte-identical packets of one flow — from
   owned router [r] until it terminates or reaches a router owned by
   another shard. The packets of a flow take the same route (the FIB
   snapshot is immutable during a run), so one walk with count-weighted
   telemetry leaves every counter exactly as [count] per-packet walks
   would. Terminal outcomes retire the flowlet from the pool-wide live
   count; a handoff does not. Same decisions as Pump's hop loop (minus
   the link filter — the pool forwards with every link up). *)
let rec walk st ~buf ~off ~len ~cls ~encap ~dst ~count r ttl =
  Telemetry.record_hop_n st.telemetry ~router:r ~cls ~bytes:len
    ~encap_bytes:encap ~count;
  match lookup_n st r ~cls ~count dst with
  | None ->
      Telemetry.record_drop_n st.telemetry ~router:r ~cls ~count;
      retire st count
  | Some Fib.Local | Some (Fib.Attached _) ->
      Telemetry.record_delivered_n st.telemetry ~router:r ~cls ~count;
      retire st count
  | Some (Fib.Next_hop nh) ->
      if ttl <= 1 then begin
        Telemetry.record_ttl_expired_n st.telemetry ~router:r ~cls ~count;
        retire st count
      end
      else if nh = r then begin
        Telemetry.record_drop_n st.telemetry ~router:r ~cls ~count;
        retire st count
      end
      else if nh >= st.lo && nh < st.hi then
        (* ownership is a block test — no division on the per-hop path *)
        walk st ~buf ~off ~len ~cls ~encap ~dst ~count nh (ttl - 1)
      else begin
        st.crossings <- st.crossings + 1;
        let m =
          {
            m_buf = buf;
            m_off = off;
            m_len = len;
            m_dst = dst;
            m_ttl = ttl - 1;
            m_router = nh;
            m_cls = cls;
            m_encap = encap;
            m_count = count;
          }
        in
        offer st (Shardmap.shard_of st.map nh) m
      end

let handle st (m : msg) =
  st.handled <- st.handled + 1;
  walk st ~buf:m.m_buf ~off:m.m_off ~len:m.m_len ~cls:m.m_cls ~encap:m.m_encap
    ~dst:m.m_dst ~count:m.m_count m.m_router m.m_ttl

let inject_flow st (j : inj) =
  st.handled <- st.handled + 1;
  let len = Wire.wire_length j.i_packet in
  let off = Wire.encode_into j.i_packet st.arena in
  let buf = Arena.buf st.arena in
  let dst = Wire.peek_dst_big buf ~off ~len ~default:j.i_packet.Packet.dst in
  let ttl = j.i_packet.Packet.ttl in
  let cls =
    match j.i_packet.Packet.payload with
    | Packet.Data _ -> Telemetry.Native
    | Packet.Encap _ -> Telemetry.Encap
  in
  let encap =
    match j.i_packet.Packet.payload with
    | Packet.Data _ -> 0
    | Packet.Encap vn -> len - (13 + String.length vn.Packet.body)
  in
  walk st ~buf ~off ~len ~cls ~encap ~dst ~count:j.i_count j.i_entry ttl

(* Retry stalled handoffs in strict FIFO order; stop at the first
   still-full ring. Returns whether anything moved. *)
let flush_overflow st =
  let moved = ref 0 in
  let stop = ref false in
  while (not !stop) && st.spill_len > 0 do
    let m = st.spill.(st.spill_head) in
    let c = Shardmap.shard_of st.map m.m_router in
    if Ring.push st.outbox.(c) m then begin
      st.spill.(st.spill_head) <- dummy_msg;
      st.spill_head <-
        (let h = st.spill_head + 1 in
         if h >= st.spill_cap then 0 else h);
      st.spill_len <- st.spill_len - 1;
      ring_doorbell st c;
      incr moved
    end
    else stop := true
  done;
  !moved > 0

(* Publish the credit signal for producers: congested above the high
   watermark of this consumer's inbox backlog, clear again only below
   the low one (hysteresis, so the flag does not flap per message).
   Called once per pass, before draining, so the published value
   reflects the backlog producers actually face. *)
let update_congestion st =
  let backlog = ref 0 in
  for p = 0 to Array.length st.inbox - 1 do
    if p <> st.sid then backlog := !backlog + Ring.length st.inbox.(p)
  done;
  if Atomic.get st.congested then begin
    if !backlog <= st.cong_lo then Atomic.set st.congested false
  end
  else if !backlog >= st.cong_hi then Atomic.set st.congested true

let inboxes_empty st =
  let empty = ref true in
  for p = 0 to Array.length st.inbox - 1 do
    if p <> st.sid && not (Ring.is_empty st.inbox.(p)) then empty := false
  done;
  !empty

(* Block until a peer rings the doorbell or the backstop timeout
   passes, then drain the pipe. Runs only when the worker is provably
   idle, so its allocations (select's fd lists) are off the per-packet
   path (allowlisted with this justification). *)
let nap st =
  st.naps <- st.naps + 1;
  Atomic.set st.asleep true;
  (* re-check after publishing the flag: a producer that pushed before
     reading the flag is now visible to us; one that pushed after will
     see the flag and ring *)
  if inboxes_empty st && Atomic.get st.live > 0 then
    ignore (Unix.select [ st.wake_r ] [] [] 2e-3);
  Atomic.set st.asleep false;
  try ignore (Unix.read st.wake_r st.bell 0 (Bytes.length st.bell))
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

exception Crashed

(* One scheduling pass: publish congestion, drain arrivals, retry
   stalled handoffs, inject fresh flows. Returns whether anything
   moved. Extracted from [run] so Domainpool.run_cooperative can
   interleave shards deterministically on one domain (DESIGN.md §13).
   An armed crash fires between flowlets: the message that was next is
   still queued, so nothing in flight is lost. *)
let pass st =
  st.passes <- st.passes + 1;
  update_congestion st;
  let progress = ref false in
  (try
     (* 1. cross-shard arrivals — consumers always drain, so producers
        blocked on a full ring are guaranteed eventual room. No burst
        cap: draining everything available minimizes scheduling rounds,
        which dominate when workers outnumber cores. *)
     for p = 0 to Array.length st.inbox - 1 do
       if p <> st.sid then begin
         let r = st.inbox.(p) in
         while not (Ring.is_empty r) do
           if crash_due st then raise Crashed;
           handle st (Ring.pop r);
           progress := true
         done
       end
     done;
     (* 2. stalled handoffs *)
     if flush_overflow st then progress := true;
     (* 3. fresh injections, paced at [inject_per_pass] per pass *)
     (try
        for _ = 1 to st.inject_per_pass do
          if Queue.is_empty st.pending then raise Exit;
          if crash_due st then raise Crashed;
          inject_flow st (Queue.take st.pending);
          progress := true
        done
      with Exit -> ())
   with Crashed -> crash_exit st);
  !progress

let run st =
  let idle = ref 0 in
  let running = ref true in
  while !running do
    let progress = pass st in
    if Atomic.get st.dead then running := false
    else if Atomic.get st.live = 0 then running := false
    else if progress then idle := 0
    else begin
      (* all workers share one core in the smallest deployments: spin
         briefly, then block on the doorbell so idle workers stop
         stealing timeslices from the one making progress *)
      incr idle;
      if !idle < 4 then Domain.cpu_relax () else nap st
    end
  done
