module Wire = Netcore.Wire
module Arena = Netcore.Arena
module Ipv4 = Netcore.Ipv4
module Lpm = Netcore.Lpm
module Packet = Netcore.Packet
module Rng = Topology.Rng
module Fib = Simcore.Fib
module Flowcache = Dataplane.Flowcache
module Telemetry = Dataplane.Telemetry

(* A cross-shard handoff: an (off, len) view into the producing
   shard's arena plus the pre-peeked header fields the next hop
   needs. Immutable — published through a Ring, read by one consumer. *)
type msg = {
  m_buf : Arena.buf;
  m_off : int;
  m_len : int;
  m_dst : Ipv4.t;
  m_ttl : int;
  m_router : int; (* next hop — owned by the receiving shard *)
  m_cls : Telemetry.cls;
  m_encap : int;
  m_count : int; (* flowlet width: byte-identical packets in this handoff *)
}

let dummy_msg =
  {
    m_buf = Arena.buf (Arena.create ~bytes:0);
    m_off = 0;
    m_len = 0;
    m_dst = Ipv4.of_int 0;
    m_ttl = 0;
    m_router = 0;
    m_cls = Telemetry.Native;
    m_encap = 0;
    m_count = 0;
  }

(* A pending injection: one flow's packet encoded once, walked
   [i_count] times (the packets of a flow are byte-identical). *)
type inj = { i_packet : Packet.t; i_entry : int; i_count : int }

type t = {
  sid : int;
  lo : int;
  hi : int;
  map : Shardmap.t;
  tables : Fib.action Lpm.t array;
      (* shared read-only snapshots — Lpm is persistent, safe across domains *)
  caches : Fib.action Flowcache.t array; (* own block only, index [r - lo] *)
  telemetry : Telemetry.t;
  rng : Rng.t; (* per-shard stream, split from the pool seed *)
  arena : Arena.t;
  pending : inj Queue.t;
  overflow : msg Queue.t; (* handoffs that hit a full ring *)
  mutable inbox : msg Ring.t array; (* inbox.(p): ring from producer shard p *)
  mutable outbox : msg Ring.t array; (* outbox.(c): ring to consumer shard c *)
  live : int Atomic.t; (* pool-wide in-flight packets *)
  asleep : bool Atomic.t; (* published before blocking on the doorbell *)
  wake_r : Unix.file_descr; (* this worker blocks here when idle *)
  wake_w : Unix.file_descr; (* peers ring it to wake this worker *)
  bell : Bytes.t; (* scratch byte for doorbell writes/drains *)
  mutable peer_asleep : bool Atomic.t array;
  mutable peer_wake : Unix.file_descr array;
  mutable crossings : int;
  mutable naps : int;
  mutable passes : int;
}

let create ~sid ~map ~tables ~cache_slots ~rng ~live =
  let lo, hi = Shardmap.range map sid in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    sid;
    lo;
    hi;
    map;
    tables;
    caches = Array.init (hi - lo) (fun _ -> Flowcache.create ~slots:cache_slots);
    telemetry = Telemetry.create ~routers:(Shardmap.routers map);
    rng;
    arena = Arena.create ~bytes:0;
    pending = Queue.create ();
    overflow = Queue.create ();
    inbox = [||];
    outbox = [||];
    live;
    asleep = Atomic.make false;
    wake_r;
    wake_w;
    bell = Bytes.make 64 '!';
    peer_asleep = [||];
    peer_wake = [||];
    crossings = 0;
    naps = 0;
    passes = 0;
  }

let set_channels t ~inbox ~outbox =
  t.inbox <- inbox;
  t.outbox <- outbox

let set_doorbells t ~peer_asleep ~peer_wake =
  t.peer_asleep <- peer_asleep;
  t.peer_wake <- peer_wake

let asleep_flag t = t.asleep
let wake_fd t = t.wake_w

let close t =
  Unix.close t.wake_r;
  Unix.close t.wake_w

let naps t = t.naps
let passes t = t.passes
let sid t = t.sid
let telemetry t = t.telemetry
let crossings t = t.crossings
let arena t = t.arena
let rng t = t.rng
let enqueue t j = Queue.add j t.pending

(* One forwarding decision at owned router [r] for a flowlet of
   [count] byte-identical packets: probe the flow cache once, account
   for every packet. A miss followed by an insert makes the remaining
   [count - 1] packets hits — exactly the statistics the per-packet
   serial pump records, since nothing else touches this router's cache
   between the packets of one flow (mirrors Pump.lookup_action). *)
let lookup_n st r ~cls ~count dst =
  let c = st.caches.(r - st.lo) in
  match Flowcache.lookup c dst with
  | Some _ as hit ->
      Telemetry.record_cache_n st.telemetry ~router:r ~cls ~hits:count
        ~misses:0;
      hit
  | None -> (
      match Lpm.lookup_value dst st.tables.(r) with
      | Some a as res ->
          Telemetry.record_cache_n st.telemetry ~router:r ~cls
            ~hits:(count - 1) ~misses:1;
          Flowcache.insert c dst a;
          res
      | None ->
          Telemetry.record_cache_n st.telemetry ~router:r ~cls ~hits:0
            ~misses:count;
          None)

(* Ring shard [c]'s doorbell. Nonblocking: a full pipe just means the
   consumer already has plenty of reasons to wake, so the byte can be
   dropped. The asleep flag is re-read after the ring push (both are
   seq_cst), which closes the lost-wakeup race: if the consumer's
   final emptiness check preceded our push, it had already published
   asleep = true, so we see it here and ring. *)
let ring_doorbell st c =
  if Atomic.get st.peer_asleep.(c) then
    try ignore (Unix.write st.peer_wake.(c) st.bell 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* Retire [count] packets from the pool-wide live count; whoever
   drains it to zero wakes every sleeping peer so they can observe
   termination without waiting out their backstop timeout. *)
let retire st count =
  if Atomic.fetch_and_add st.live (-count) = count then
    for c = 0 to Array.length st.peer_wake - 1 do
      if c <> st.sid then ring_doorbell st c
    done

(* Walk a flowlet — [count] byte-identical packets of one flow — from
   owned router [r] until it terminates or reaches a router owned by
   another shard. The packets of a flow take the same route (the FIB
   snapshot is immutable during a run), so one walk with count-weighted
   telemetry leaves every counter exactly as [count] per-packet walks
   would. Terminal outcomes retire the flowlet from the pool-wide live
   count; a handoff does not. Same decisions as Pump's hop loop (minus
   the link filter — the pool forwards with every link up). *)
let rec walk st ~buf ~off ~len ~cls ~encap ~dst ~count r ttl =
  Telemetry.record_hop_n st.telemetry ~router:r ~cls ~bytes:len
    ~encap_bytes:encap ~count;
  match lookup_n st r ~cls ~count dst with
  | None ->
      Telemetry.record_drop_n st.telemetry ~router:r ~cls ~count;
      retire st count
  | Some Fib.Local | Some (Fib.Attached _) ->
      Telemetry.record_delivered_n st.telemetry ~router:r ~cls ~count;
      retire st count
  | Some (Fib.Next_hop nh) ->
      if ttl <= 1 then begin
        Telemetry.record_ttl_expired_n st.telemetry ~router:r ~cls ~count;
        retire st count
      end
      else if nh = r then begin
        Telemetry.record_drop_n st.telemetry ~router:r ~cls ~count;
        retire st count
      end
      else if nh >= st.lo && nh < st.hi then
        (* ownership is a block test — no division on the per-hop path *)
        walk st ~buf ~off ~len ~cls ~encap ~dst ~count nh (ttl - 1)
      else begin
        st.crossings <- st.crossings + 1;
        let m =
          {
            m_buf = buf;
            m_off = off;
            m_len = len;
            m_dst = dst;
            m_ttl = ttl - 1;
            m_router = nh;
            m_cls = cls;
            m_encap = encap;
            m_count = count;
          }
        in
        let c = Shardmap.shard_of st.map nh in
        (* overflow drains strictly first, so per-pair FIFO holds *)
        if not (Queue.is_empty st.overflow) || not (Ring.push st.outbox.(c) m)
        then Queue.add m st.overflow
        else ring_doorbell st c
      end

let handle st (m : msg) =
  walk st ~buf:m.m_buf ~off:m.m_off ~len:m.m_len ~cls:m.m_cls ~encap:m.m_encap
    ~dst:m.m_dst ~count:m.m_count m.m_router m.m_ttl

let inject_flow st (j : inj) =
  let len = Wire.wire_length j.i_packet in
  let off = Wire.encode_into j.i_packet st.arena in
  let buf = Arena.buf st.arena in
  let dst = Wire.peek_dst_big buf ~off ~len ~default:j.i_packet.Packet.dst in
  let ttl = j.i_packet.Packet.ttl in
  let cls =
    match j.i_packet.Packet.payload with
    | Packet.Data _ -> Telemetry.Native
    | Packet.Encap _ -> Telemetry.Encap
  in
  let encap =
    match j.i_packet.Packet.payload with
    | Packet.Data _ -> 0
    | Packet.Encap vn -> len - (13 + String.length vn.Packet.body)
  in
  walk st ~buf ~off ~len ~cls ~encap ~dst ~count:j.i_count j.i_entry ttl

(* Retry stalled handoffs in strict FIFO order; stop at the first
   still-full ring. Returns whether anything moved. *)
let flush_overflow st =
  let n = Queue.length st.overflow in
  let moved = ref 0 in
  let stop = ref false in
  while (not !stop) && !moved < n do
    let m = Queue.peek st.overflow in
    let c = Shardmap.shard_of st.map m.m_router in
    if Ring.push st.outbox.(c) m then begin
      ignore (Queue.take st.overflow);
      ring_doorbell st c;
      incr moved
    end
    else stop := true
  done;
  !moved > 0

let inboxes_empty st =
  let empty = ref true in
  for p = 0 to Array.length st.inbox - 1 do
    if p <> st.sid && not (Ring.is_empty st.inbox.(p)) then empty := false
  done;
  !empty

(* Block until a peer rings the doorbell or the backstop timeout
   passes, then drain the pipe. Runs only when the worker is provably
   idle, so its allocations (select's fd lists) are off the per-packet
   path (allowlisted with this justification). *)
let nap st =
  st.naps <- st.naps + 1;
  Atomic.set st.asleep true;
  (* re-check after publishing the flag: a producer that pushed before
     reading the flag is now visible to us; one that pushed after will
     see the flag and ring *)
  if inboxes_empty st && Atomic.get st.live > 0 then
    ignore (Unix.select [ st.wake_r ] [] [] 2e-3);
  Atomic.set st.asleep false;
  try ignore (Unix.read st.wake_r st.bell 0 (Bytes.length st.bell))
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let run st =
  let idle = ref 0 in
  let running = ref true in
  while !running do
    st.passes <- st.passes + 1;
    let progress = ref false in
    (* 1. cross-shard arrivals — consumers always drain, so producers
       blocked on a full ring are guaranteed eventual room. No burst
       cap: draining everything available minimizes scheduling rounds,
       which dominate when workers outnumber cores. *)
    for p = 0 to Array.length st.inbox - 1 do
      if p <> st.sid then begin
        let r = st.inbox.(p) in
        while not (Ring.is_empty r) do
          handle st (Ring.pop r);
          progress := true
        done
      end
    done;
    (* 2. stalled handoffs *)
    if flush_overflow st then progress := true;
    (* 3. fresh injections *)
    while not (Queue.is_empty st.pending) do
      inject_flow st (Queue.take st.pending);
      progress := true
    done;
    if Atomic.get st.live = 0 then running := false
    else if !progress then idle := 0
    else begin
      (* all workers share one core in the smallest deployments: spin
         briefly, then block on the doorbell so idle workers stop
         stealing timeslices from the one making progress *)
      incr idle;
      if !idle < 4 then Domain.cpu_relax () else nap st
    end
  done
