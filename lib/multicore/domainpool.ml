module Wire = Netcore.Wire
module Arena = Netcore.Arena
module Packet = Netcore.Packet
module Internet = Topology.Internet
module Rng = Topology.Rng
module Fib = Simcore.Fib
module Forward = Simcore.Forward
module Workload = Dataplane.Workload
module Telemetry = Dataplane.Telemetry

type t = {
  env : Forward.env;
  map : Shardmap.t;
  shards : Shard.t array;
  live : int Atomic.t;
}

let create ?(cache_slots = 256) ?(ring_capacity = 1024) (env : Forward.env)
    ~shards ~seed =
  let n = Internet.num_routers env.Forward.inet in
  let map = Shardmap.create ~routers:n ~shards in
  let fib = Fib.compile env in
  let tables = Array.init n (fun r -> Fib.table fib ~router:r) in
  let live = Atomic.make 0 in
  let pool_rng = Rng.create seed in
  let ss =
    Array.init shards (fun sid ->
        Shard.create ~sid ~map ~tables ~cache_slots ~rng:(Rng.split pool_rng)
          ~live)
  in
  (* rings.(p).(c) carries handoffs from shard p to shard c: exactly
     one producer and one consumer per ring, the SPSC contract *)
  let rings =
    Array.init shards (fun _ ->
        Array.init shards (fun _ ->
            Ring.create ~capacity:ring_capacity ~dummy:Shard.dummy_msg))
  in
  let peer_asleep = Array.map Shard.asleep_flag ss in
  let peer_wake = Array.map Shard.wake_fd ss in
  Array.iteri
    (fun c s ->
      Shard.set_channels s
        ~inbox:(Array.init shards (fun p -> rings.(p).(c)))
        ~outbox:(Array.init shards (fun c' -> rings.(c).(c')));
      Shard.set_doorbells s ~peer_asleep ~peer_wake)
    ss;
  { env; map; shards = ss; live }

let env t = t.env
let map t = t.map
let num_shards t = Array.length t.shards
let shard t i = t.shards.(i)

let run t (flows : Workload.flow list) =
  let inet = t.env.Forward.inet in
  let nshards = Array.length t.shards in
  let bytes = Array.make nshards 0 in
  let total = ref 0 in
  List.iter
    (fun (f : Workload.flow) ->
      let hs = Internet.endhost inet f.Workload.src
      and hd = Internet.endhost inet f.Workload.dst in
      let payload = String.make f.Workload.bytes_per_packet 'x' in
      let p =
        Packet.make_data ~src:hs.Internet.haddr ~dst:hd.Internet.haddr payload
      in
      let entry = hs.Internet.access_router in
      let sid = Shardmap.shard_of t.map entry in
      bytes.(sid) <- bytes.(sid) + Wire.wire_length p;
      total := !total + f.Workload.packets;
      Shard.enqueue t.shards.(sid)
        { Shard.i_packet = p; i_entry = entry; i_count = f.Workload.packets })
    flows;
  (* size each shard's slab for the whole batch before any worker
     starts: nothing is in flight, so reset + ensure are safe *)
  Array.iteri
    (fun sid s ->
      let a = Shard.arena s in
      Arena.reset a;
      Arena.ensure a ~bytes:bytes.(sid))
    t.shards;
  Atomic.set t.live !total;
  if nshards = 1 then Shard.run t.shards.(0)
  else
    let ds =
      Array.map (fun s -> Domain.spawn (fun () -> Shard.run s)) t.shards
    in
    Array.iter Domain.join ds

(* Merge in fixed shard order 0..n-1. The merge itself is a field-wise
   sum, so any order gives the same counters — the fixed order makes
   that indifference visible rather than load-bearing. *)
let telemetry t =
  let acc = ref (Shard.telemetry t.shards.(0)) in
  for i = 1 to Array.length t.shards - 1 do
    acc := Telemetry.merge !acc (Shard.telemetry t.shards.(i))
  done;
  !acc

let crossings t = Array.fold_left (fun a s -> a + Shard.crossings s) 0 t.shards
let close t = Array.iter Shard.close t.shards
