module Wire = Netcore.Wire
module Arena = Netcore.Arena
module Packet = Netcore.Packet
module Internet = Topology.Internet
module Rng = Topology.Rng
module Fib = Simcore.Fib
module Forward = Simcore.Forward
module Workload = Dataplane.Workload
module Telemetry = Dataplane.Telemetry

type t = {
  env : Forward.env;
  map : Shardmap.t;
  shards : Shard.t array;
  live : int Atomic.t;
  restarts : int array; (* per-shard revive count, bumped by the supervisor *)
}

let create ?(cache_slots = 256) ?(ring_capacity = 1024) ?spill_cap ?shed_eager
    ?inject_per_pass (env : Forward.env) ~shards ~seed =
  let n = Internet.num_routers env.Forward.inet in
  let map = Shardmap.create ~routers:n ~shards in
  let fib = Fib.compile env in
  let tables = Array.init n (fun r -> Fib.table fib ~router:r) in
  let live = Atomic.make 0 in
  let pool_rng = Rng.create seed in
  let ss =
    Array.init shards (fun sid ->
        Shard.create ?spill_cap ?shed_eager ?inject_per_pass ~sid ~map ~tables
          ~cache_slots ~rng:(Rng.split pool_rng) ~live ())
  in
  (* rings.(p).(c) carries handoffs from shard p to shard c: exactly
     one producer and one consumer per ring, the SPSC contract *)
  let rings =
    Array.init shards (fun _ ->
        Array.init shards (fun _ ->
            Ring.create ~capacity:ring_capacity ~dummy:Shard.dummy_msg))
  in
  let peer_asleep = Array.map Shard.asleep_flag ss in
  let peer_congested = Array.map Shard.congested_flag ss in
  let peer_wake = Array.map Shard.wake_fd ss in
  Array.iteri
    (fun c s ->
      Shard.set_channels s
        ~inbox:(Array.init shards (fun p -> rings.(p).(c)))
        ~outbox:(Array.init shards (fun c' -> rings.(c).(c')));
      Shard.set_doorbells s ~peer_asleep ~peer_congested ~peer_wake)
    ss;
  { env; map; shards = ss; live; restarts = Array.make shards 0 }

let env t = t.env
let map t = t.map
let num_shards t = Array.length t.shards
let shard t i = t.shards.(i)

(* Stage a batch: encode nothing yet, but distribute every flow to its
   entry shard's pending queue and size each arena for its share.
   Returns the pool-wide packet count; the caller publishes it into
   [t.live] before any worker starts. *)
let stage t (flows : Workload.flow list) =
  let inet = t.env.Forward.inet in
  let nshards = Array.length t.shards in
  let bytes = Array.make nshards 0 in
  let total = ref 0 in
  List.iter
    (fun (f : Workload.flow) ->
      let hs = Internet.endhost inet f.Workload.src
      and hd = Internet.endhost inet f.Workload.dst in
      let payload = String.make f.Workload.bytes_per_packet 'x' in
      let p =
        Packet.make_data ~src:hs.Internet.haddr ~dst:hd.Internet.haddr payload
      in
      let entry = hs.Internet.access_router in
      let sid = Shardmap.shard_of t.map entry in
      bytes.(sid) <- bytes.(sid) + Wire.wire_length p;
      total := !total + f.Workload.packets;
      Shard.enqueue t.shards.(sid)
        { Shard.i_packet = p; i_entry = entry; i_count = f.Workload.packets })
    flows;
  (* size each shard's slab for the whole batch before any worker
     starts: nothing is in flight, so reset + ensure are safe *)
  Array.iteri
    (fun sid s ->
      let a = Shard.arena s in
      Arena.reset a;
      Arena.ensure a ~bytes:bytes.(sid))
    t.shards;
  !total

(* Supervisor action for a dead shard: revive it (flow caches rebuild
   warm from the shared FIB snapshots — Shard.revive) and count the
   restart. The worker must not be running. *)
let restart_shard t sid =
  Shard.revive t.shards.(sid);
  t.restarts.(sid) <- t.restarts.(sid) + 1

let restarts t = Array.fold_left ( + ) 0 t.restarts
let shard_restarts t sid = t.restarts.(sid)

let run t (flows : Workload.flow list) =
  let nshards = Array.length t.shards in
  let total = stage t flows in
  Atomic.set t.live total;
  let supervised = Array.exists Shard.crash_armed t.shards in
  if nshards = 1 then begin
    Shard.run t.shards.(0);
    (* inline supervision: a crashed solo shard restarts until the
       batch drains *)
    while
      Atomic.get t.live > 0 && Atomic.get (Shard.dead_flag t.shards.(0))
    do
      restart_shard t 0;
      Shard.run t.shards.(0)
    done
  end
  else if not supervised then
    (* no crash armed: the workers' exit condition (live = 0) is the
       only termination, exactly the pre-supervision behaviour — the
       main domain blocks in join and steals no cycles *)
    let ds =
      Array.map (fun s -> Domain.spawn (fun () -> Shard.run s)) t.shards
    in
    Array.iter Domain.join ds
  else begin
    let ds =
      Array.map (fun s -> Domain.spawn (fun () -> Shard.run s)) t.shards
    in
    (* the supervisor: poll the published dead flags, join the exited
       worker, revive its shard and respawn it. Detection latency is a
       millisecond-scale poll; peers keep draining meanwhile (their
       doorbell naps have a backstop timeout, so they cannot sleep
       through the recovery). *)
    while Atomic.get t.live > 0 do
      let acted = ref false in
      Array.iteri
        (fun i s ->
          if Atomic.get (Shard.dead_flag s) then begin
            Domain.join ds.(i);
            restart_shard t i;
            ds.(i) <- Domain.spawn (fun () -> Shard.run s);
            acted := true
          end)
        t.shards;
      if not !acted then ignore (Unix.select [] [] [] 1e-3)
    done;
    Array.iter Domain.join ds
  end

(* Deterministic single-domain driver: round-robin one Shard.pass per
   shard per round until the batch drains. [slow] starves one shard —
   the victim only gets a pass every [period] rounds — which is how
   the slow-consumer drill exercises backpressure and shedding with
   bit-reproducible results. A shard that crashes is detected at the
   end of the round and revived (the supervisor at round granularity);
   returns the rounds taken. *)
let run_cooperative ?slow t (flows : Workload.flow list) =
  let n = Array.length t.shards in
  let total = stage t flows in
  Atomic.set t.live total;
  let rounds = ref 0 in
  while Atomic.get t.live > 0 do
    incr rounds;
    for sid = 0 to n - 1 do
      let s = t.shards.(sid) in
      if not (Atomic.get (Shard.dead_flag s)) then begin
        let step =
          match slow with
          | Some (victim, period) when sid = victim ->
              !rounds mod period = 0
          | _ -> true
        in
        if step then ignore (Shard.pass s : bool)
      end
    done;
    for sid = 0 to n - 1 do
      if Atomic.get (Shard.dead_flag t.shards.(sid)) then restart_shard t sid
    done
  done;
  !rounds

(* Merge in fixed shard order 0..n-1. The merge itself is a field-wise
   sum, so any order gives the same counters — the fixed order makes
   that indifference visible rather than load-bearing. *)
let telemetry t =
  let acc = ref (Shard.telemetry t.shards.(0)) in
  for i = 1 to Array.length t.shards - 1 do
    acc := Telemetry.merge !acc (Shard.telemetry t.shards.(i))
  done;
  !acc

let crossings t = Array.fold_left (fun a s -> a + Shard.crossings s) 0 t.shards
let shed t = Array.fold_left (fun a s -> a + Shard.shed s) 0 t.shards

let overflow_high_water t =
  Array.fold_left (fun a s -> max a (Shard.overflow_high_water s)) 0 t.shards

let close t = Array.iter Shard.close t.shards
