(** Bounded single-producer/single-consumer rings for cross-shard
    packet handoff.

    When a packet's next hop is owned by another shard (DESIGN.md
    §11), the owning worker hands it off through the ring dedicated to
    that (producer, consumer) pair — one ring per ordered shard pair,
    so each ring has exactly one writer of [tail] and one writer of
    [head], and plain [Atomic] loads/stores give publication without
    locks. Bounded capacity is the backpressure mechanism the paper's
    traffic-volume arguments (§3.2) require: a full ring makes {!push}
    return [false] and the producer queues locally instead of
    blocking, so shards can never deadlock on each other. FIFO order,
    loss-freedom and no-duplication are asserted by qcheck properties
    in the test-suite. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [create ~capacity ~dummy] builds a ring holding at least
    [capacity] elements (rounded up to a power of two — see
    {!capacity}). [dummy] fills empty slots so {!push} and {!pop}
    never allocate option cells.
    @raise Invalid_argument when [capacity] is not positive. *)

val capacity : 'a t -> int
(** Actual slot count (the requested capacity rounded up to a power
    of two). *)

val length : 'a t -> int
(** Elements currently queued, clamped to [[0, capacity t]]. The two
    endpoint counters are read in separate loads, not a snapshot, so a
    cross-domain observer can pair a stale [tail] with a fresh [head]
    (or vice versa); the raw difference can transiently fall outside
    the representable range and is clamped. Exact when called from an
    endpoint's own domain; from any other domain it is only an
    approximation that was accurate at some instant between the two
    loads' bounds. *)

val is_empty : 'a t -> bool
(** [length t = 0]. Exact for the consumer: once it observes
    non-empty, {!pop} is safe. *)

val credits : 'a t -> int
(** Free slots: [capacity t - length t]. Exact from the producer's
    own domain (only the consumer can make it grow concurrently), so a
    producer can treat it as a credit count that never over-promises:
    the watermark/backpressure protocol of DESIGN.md §13 reads it to
    decide between spilling and shedding. *)

val push : 'a t -> 'a -> bool
(** Producer side only. Enqueue, or return [false] when the ring is
    full — the backpressure signal; the element is NOT queued and the
    caller keeps ownership. Allocation-free. *)

val pop : 'a t -> 'a
(** Consumer side only. Dequeue the oldest element; allocation-free.
    @raise Invalid_argument when the ring is empty — guard with
    {!is_empty}, which is exact for the consumer. *)
