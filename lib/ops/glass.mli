(** The looking glass: operator queries over a drill's live state.

    Real deployments are debugged through looking-glass servers; this
    is the drill subsystem's equivalent, answering the questions an
    operator asks mid-incident — what route does domain D hold for
    this address, is the vN-Bone still in one piece ("easily detected
    and repaired", §3.3), which BGP sessions are torn down, how much
    traffic is blackholed — against the live protocol state of a
    {!Drill.run} at its current engine time ([evolvenet glass --at]
    advances the run first).

    Output stability contract: for a fixed drill book, params and
    engine time, every query renders byte-identical text across runs
    (all iteration is over sorted ids). Scripts may depend on the
    field layout; new lines may be appended in later revisions, but
    existing lines do not move or change format (DESIGN.md §12.3). *)

type query =
  | Route of { domain : int; addr : Netcore.Ipv4.t }
      (** the domain's chosen route covering an address: converged RIB
          view plus the live {!Simcore.Bgpdyn} session view *)
  | Rib of { domain : int }
      (** the domain's routes for the anycast group and every domain
          /16 *)
  | Fib_table of { router : int }
      (** the router's compiled forwarding table ({!Drill.fib}) *)
  | Tunnels  (** every vN-Bone tunnel with provenance and liveness *)
  | Sessions of { domain : int }
      (** the domain's BGP sessions with relationship and state *)
  | Health
      (** one-page incident summary: phase, detection, fabric and
          session statistics, vN-Bone connectivity, LSDB sync, traffic
          counters *)

val parse : string list -> (query, string) result
(** Parse CLI words ([route 3 10.4.0.9], [rib 3], [fib 12], [tunnels],
    [sessions 3], [health]); [Error] carries the usage line. *)

val usage : string

val render : Drill.run -> query -> string
(** Answer the query against the run's current state, as stable
    multi-line text (see the stability contract above). Out-of-range
    domain or router ids render as a one-line error rather than
    raising. *)
