(** Recovery-SLO accounting for one completed drill.

    Turns a drill's probe-tick record into the four recovery metrics
    an operator would put in a post-mortem, and grades them against
    the book's declared budgets — the quantitative form of the paper's
    claims that anycast "naturally lends itself to fault tolerance"
    (§2.2) and that vN-Bone damage is "easily detected and repaired"
    (§3.3). Asserted in the test-suite for every catalog drill and
    swept by experiments E34/E35. *)

type metrics = {
  detection_s : float option;
      (** seconds from fault onset to detection ([None]: never) *)
  reconverge_s : float option;
      (** seconds from fault onset until the probe delivery fraction
          is back at — and stays at — its last pre-fault level
          ([None]: never within the drill) *)
  blackhole_s : float;
      (** integral of the lost-probe fraction over the drill's 1-second
          ticks — probe-seconds of blackholed traffic *)
  stale_frac : float;  (** mean fraction of probes accepted off-target *)
  hijacked_peak : float;
      (** worst single-tick fraction of probes terminating inside the
          rogue domain (0 outside hijack drills) *)
}

type verdict = { metrics : metrics; pass : bool; failures : string list }

val measure : Drill.run -> metrics
(** Compute the metrics from the run's rows; call after
    {!Drill.execute}. *)

val evaluate : Drill.run -> verdict
(** {!measure}, then compare each metric against the book's
    {!Drillbook.slo} budgets. [failures] lists every miss in a stable
    human-readable form. *)

val render : Drillbook.t -> verdict -> string
(** Stable multi-line report ([evolvenet drill] prints it; its exit
    status is the verdict). *)
