(** Deterministic replay of a {!Drillbook} scenario.

    One [run] stands up the full stack the scenario needs — the
    internet, the anycast deployment (§3.2), the vN-Bone with BGPvN
    over it (§3.3), the asynchronous control planes ({!Simcore.Bgpdyn}
    over TCP-like sessions, {!Simcore.Lsproto} in every deployed
    domain) and the {!Dataplane.Pump} traffic engine — then replays
    the drill's fault script through two {!Simcore.Faults} fabrics on
    one {!Simcore.Engine}: a router-level fabric driving the data
    plane's link filter and the IGP dynamics, and a domain-level FIFO
    fabric under the BGP sessions. Every random draw flows through
    {!Topology.Rng} from the book's seed, so a drill is replayable
    byte-for-byte ({!transcript} — asserted by the test-suite).

    When the book's [recovery] is on, the operator playbook runs
    [detection_delay] after fault onset: the blackout playbook
    reroutes the control plane around the cuts and repairs the
    vN-Bone ("easily detected and repaired", §3.3), the de-peering
    playbook withdraws the cut-off origin so the internet reroutes to
    surviving members, and the hijack is detected from the probe
    stream itself. Line cards then pick the changes up across a
    batched refresh window, as in experiment E32. *)

type tick_row = {
  tick : int;
  time : float;
  phase : string;  (** steady | fault | healing | recovered *)
  ok : float;  (** probe fraction accepted by a current member *)
  stale : float;  (** accepted elsewhere (stale table or wrong target) *)
  hijacked : float;  (** terminated inside the rogue domain *)
  lost : float;  (** dropped: link down / no route *)
  looped : float;  (** TTL expiry *)
}

type run

val prepare : ?params:Topology.Internet.params -> Drillbook.t -> run
(** Build the scenario and schedule the whole script (faults,
    playbook, probe ticks) without running it. [params] overrides the
    book's topology (the book's seed still applies) — how tests run a
    drill over a small internet. *)

val execute : run -> unit
(** Drain the engine: the drill runs to its horizon. Idempotent. *)

val run_until : run -> time:float -> unit
(** Advance the engine to an absolute time — how the looking glass
    inspects mid-incident state ([evolvenet glass --at]). *)

val complete : ?params:Topology.Internet.params -> Drillbook.t -> run
(** [prepare] then [execute]. *)

(** {2 Results} *)

val rows : run -> tick_row list
(** One row per completed probe tick, in time order. For the two
    overload kinds the fractions come from the overload machinery
    itself: flash-crowd rows are control-probe outcomes through the
    finite link queues; slow-consumer rows are the domain pool's
    per-tick telemetry deltas. *)

type drop_reasons = {
  queue_full : int;  (** droptail at a full link queue *)
  shed_native : int;  (** deliberate sheds of native-class packets *)
  shed_encap : int;
  shed_control : int;
      (** control sheds — zero unless every lower class was exhausted
          first (drop precedence, DESIGN.md §13) *)
  fabric : int;
      (** control-plane messages the fault fabrics killed or shed
          (lost + cut + dead + shed over both fabrics) *)
}

val drop_reasons : run -> drop_reasons
(** Where every lost packet went, aggregated over the pump, the
    slow-consumer pool (when present) and both fault fabrics — the
    [evolvenet drill --report] breakdown. *)

val close : run -> unit
(** Release OS resources held by the run (the slow-consumer pool's
    doorbell descriptors). No-op for other kinds; call when done with
    a run that will not be inspected further. *)

val events : run -> (float * string) list
(** The timestamped incident log (fault onset, detection, repair). *)

val detected_at : run -> float option
(** Engine time the incident was detected; [None] when monitoring
    never fired (e.g. [recovery] off). *)

val transcript : run -> string
(** The full drill record as stable text: scenario header, incident
    log, per-tick delivery table. Same seed, same book, same params —
    byte-identical output. *)

(** {2 Live state, for the looking glass} *)

val book : run -> Drillbook.t
val internet : run -> Topology.Internet.t
val env : run -> Simcore.Forward.env
val service : run -> Anycast.Service.t
val engine : run -> Simcore.Engine.t

val now : run -> float
(** Current engine time. *)

val phase : run -> string
(** The drill phase at the current engine time
    (steady | fault | healing | recovered). *)

val pump : run -> Dataplane.Pump.t

val linkq : run -> Dataplane.Linkq.t option
(** The finite link queues, when the drill is a flash crowd. *)

val pool : run -> Multicore.Domainpool.t option
(** The sharded pool, when the drill is a slow consumer. *)

val link_faults : run -> Simcore.Faults.t
(** Router-level fabric: link cuts and member crashes. *)

val session_faults : run -> Simcore.Faults.t
(** Domain-level FIFO fabric under the BGP sessions. *)

val bgpdyn : run -> Simcore.Bgpdyn.t
val lsprotos : run -> (int * Simcore.Lsproto.t) list
(** The per-deployed-domain link-state protocol instances. *)

val fabric : run -> Vnbone.Fabric.t
val bgpvn : run -> Vnbone.Bgpvn.t

val fib : run -> Simcore.Fib.t
(** The control plane's current compiled FIB (what a completed refresh
    would install at every line card); recompiled lazily after each
    playbook step. *)

val group : run -> Netcore.Prefix.t
(** The deployment's anycast prefix. *)

val deployed : run -> int list
(** Deployed (participant) domains, ascending. *)

val rogue : run -> int option
(** The hijacking domain, for hijack drills. *)

val victim_domain : run -> int option
(** The de-peered / flapping stub, for those drills. *)
