type metrics = {
  detection_s : float option;
  reconverge_s : float option;
  blackhole_s : float;
  stale_frac : float;
  hijacked_peak : float;
}

type verdict = { metrics : metrics; pass : bool; failures : string list }

let tick_interval = 1.0

let measure r =
  let b = Drill.book r in
  let rows = Drill.rows r in
  let fault_at = b.Drillbook.fault_at in
  let detection_s =
    Option.map (fun t -> t -. fault_at) (Drill.detected_at r)
  in
  (* pre-fault delivery level: the last steady tick *)
  let steady_ok =
    List.fold_left
      (fun acc (row : Drill.tick_row) ->
        if row.Drill.time < fault_at then row.Drill.ok else acc)
      1.0 rows
  in
  (* first post-onset tick after which delivery never again drops
     below the steady level *)
  let reconverge_s =
    let rec scan = function
      | [] -> None
      | (row : Drill.tick_row) :: rest ->
          if
            row.Drill.time >= fault_at
            && row.Drill.ok >= steady_ok -. 1e-9
            && List.for_all
                 (fun (r' : Drill.tick_row) ->
                   r'.Drill.ok >= steady_ok -. 1e-9)
                 rest
          then Some (row.Drill.time -. fault_at)
          else scan rest
    in
    scan rows
  in
  let blackhole_s =
    List.fold_left
      (fun acc (row : Drill.tick_row) ->
        acc +. (row.Drill.lost *. tick_interval))
      0.0 rows
  in
  let stale_frac =
    match rows with
    | [] -> 0.0
    | _ ->
        List.fold_left
          (fun acc (row : Drill.tick_row) -> acc +. row.Drill.stale)
          0.0 rows
        /. float_of_int (List.length rows)
  in
  let hijacked_peak =
    List.fold_left
      (fun acc (row : Drill.tick_row) -> Float.max acc row.Drill.hijacked)
      0.0 rows
  in
  { detection_s; reconverge_s; blackhole_s; stale_frac; hijacked_peak }

let evaluate r =
  let b = Drill.book r in
  let s = b.Drillbook.slo in
  let m = measure r in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt in
  (match m.detection_s with
  | None -> fail "incident never detected (budget %.2fs)" s.Drillbook.max_detection
  | Some d ->
      if d > s.Drillbook.max_detection then
        fail "detection %.2fs over budget %.2fs" d s.Drillbook.max_detection);
  (match m.reconverge_s with
  | None -> fail "never reconverged (budget %.2fs)" s.Drillbook.max_reconverge
  | Some d ->
      if d > s.Drillbook.max_reconverge then
        fail "reconvergence %.2fs over budget %.2fs" d
          s.Drillbook.max_reconverge);
  if m.blackhole_s > s.Drillbook.max_blackhole then
    fail "blackhole %.2fs over budget %.2fs" m.blackhole_s
      s.Drillbook.max_blackhole;
  if m.stale_frac > s.Drillbook.max_stale then
    fail "stale fraction %.3f over budget %.3f" m.stale_frac
      s.Drillbook.max_stale;
  if m.hijacked_peak > s.Drillbook.max_hijacked then
    fail "hijacked peak %.3f over budget %.3f" m.hijacked_peak
      s.Drillbook.max_hijacked;
  let failures = List.rev !failures in
  { metrics = m; pass = (match failures with [] -> true | _ -> false); failures }

let fopt = function None -> "n/a" | Some f -> Printf.sprintf "%.2fs" f

let render b v =
  let s = b.Drillbook.slo in
  let m = v.metrics in
  let line name value budget ok =
    Printf.sprintf "  %-13s %-8s (budget %-8s) %s" name value budget
      (if ok then "ok" else "MISS")
  in
  let bud f = Printf.sprintf "%.2fs" f in
  let within opt budget =
    match opt with None -> false | Some d -> d <= budget
  in
  String.concat "\n"
    [
      Printf.sprintf "SLO verdict for %s: %s" b.Drillbook.name
        (if v.pass then "PASS" else "FAIL");
      line "detection" (fopt m.detection_s)
        (bud s.Drillbook.max_detection)
        (within m.detection_s s.Drillbook.max_detection);
      line "reconvergence" (fopt m.reconverge_s)
        (bud s.Drillbook.max_reconverge)
        (within m.reconverge_s s.Drillbook.max_reconverge);
      line "blackhole"
        (Printf.sprintf "%.2fs" m.blackhole_s)
        (bud s.Drillbook.max_blackhole)
        (m.blackhole_s <= s.Drillbook.max_blackhole);
      line "stale"
        (Printf.sprintf "%.3f" m.stale_frac)
        (Printf.sprintf "%.3f" s.Drillbook.max_stale)
        (m.stale_frac <= s.Drillbook.max_stale);
      line "hijacked"
        (Printf.sprintf "%.3f" m.hijacked_peak)
        (Printf.sprintf "%.3f" s.Drillbook.max_hijacked)
        (m.hijacked_peak <= s.Drillbook.max_hijacked);
    ]
