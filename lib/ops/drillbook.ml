type slo = {
  max_detection : float;
  max_reconverge : float;
  max_blackhole : float;
  max_stale : float;
  max_hijacked : float;
}

type kind =
  | Blackout of { links : int; routers_down : int }
  | Depeer of { stub_rank : int }
  | Hijack of { rogue_rank : int }
  | Provider_flap of {
      stub_rank : int;
      cycles : int;
      period : float;
      down_for : float;
    }
  | Flash_crowd of { rate : int; depth : int; reserve : int; burst : int }
  | Slow_consumer of {
      shards : int;
      victim : int;
      slowdown : int;
      spill_cap : int;
      flows : int;
    }

type t = {
  name : string;
  seed : int64;
  transit : int;
  stubs : int;
  deploy_domains : int;
  probes : int;
  ticks : int;
  fault_at : float;
  fault_until : float;
  kind : kind;
  loss : float;
  jitter : float;
  recovery : bool;
  detection_delay : float;
  slo : slo;
}

let slo ~detection ~reconverge ~blackhole ~stale ~hijacked =
  if detection < 0.0 || reconverge < 0.0 || blackhole < 0.0 then
    invalid_arg "Drillbook.slo: negative time budget";
  if stale < 0.0 || stale > 1.0 || hijacked < 0.0 || hijacked > 1.0 then
    invalid_arg "Drillbook.slo: fraction outside [0,1]";
  {
    max_detection = detection;
    max_reconverge = reconverge;
    max_blackhole = blackhole;
    max_stale = stale;
    max_hijacked = hijacked;
  }

let make ~name ?(seed = 42L) ?(transit = 4) ?(stubs = 6) ?(deploy_domains = 4)
    ?(probes = 40) ?(ticks = 12) ?(fault_at = 3.0) ?(fault_until = 7.0)
    ?(loss = 0.05) ?(jitter = 0.2) ?(recovery = true) ?(detection_delay = 0.3)
    ~slo kind =
  if String.length name = 0 then invalid_arg "Drillbook.make: empty name";
  if transit <= 0 || stubs <= 0 || deploy_domains <= 0 then
    invalid_arg "Drillbook.make: non-positive topology size";
  if probes <= 0 || ticks <= 0 then
    invalid_arg "Drillbook.make: non-positive probes or ticks";
  if fault_at < 0.0 || fault_until <= fault_at
     || fault_until > float_of_int ticks
  then invalid_arg "Drillbook.make: fault window outside [0, ticks]";
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Drillbook.make: loss outside [0,1]";
  if jitter < 0.0 then invalid_arg "Drillbook.make: negative jitter";
  if detection_delay < 0.0 then
    invalid_arg "Drillbook.make: negative detection delay";
  (match kind with
  | Blackout { links; routers_down } ->
      if links <= 0 || routers_down < 0 then
        invalid_arg "Drillbook.make: blackout needs links > 0, routers >= 0"
  | Depeer { stub_rank } ->
      if stub_rank < 0 then invalid_arg "Drillbook.make: negative stub rank"
  | Hijack { rogue_rank } ->
      if rogue_rank < 0 then invalid_arg "Drillbook.make: negative rogue rank"
  | Provider_flap { stub_rank; cycles; period; down_for } ->
      if stub_rank < 0 then invalid_arg "Drillbook.make: negative stub rank";
      if cycles <= 0 then invalid_arg "Drillbook.make: cycles <= 0";
      if down_for <= 0.0 || down_for > period then
        invalid_arg "Drillbook.make: down_for outside (0, period]"
  | Flash_crowd { rate; depth; reserve; burst } ->
      if rate <= 0 || depth <= 0 then
        invalid_arg "Drillbook.make: flash crowd needs rate > 0, depth > 0";
      if reserve < 0 || reserve >= depth then
        invalid_arg "Drillbook.make: control reserve outside [0, depth)";
      if burst <= 0 then invalid_arg "Drillbook.make: burst <= 0"
  | Slow_consumer { shards; victim; slowdown; spill_cap; flows } ->
      if shards < 2 then
        invalid_arg "Drillbook.make: slow consumer needs >= 2 shards";
      if victim < 0 || victim >= shards then
        invalid_arg "Drillbook.make: victim shard outside [0, shards)";
      if slowdown < 2 then invalid_arg "Drillbook.make: slowdown < 2";
      if spill_cap <= 0 then invalid_arg "Drillbook.make: spill_cap <= 0";
      if flows <= 0 then invalid_arg "Drillbook.make: flows <= 0");
  {
    name;
    seed;
    transit;
    stubs;
    deploy_domains;
    probes;
    ticks;
    fault_at;
    fault_until;
    kind;
    loss;
    jitter;
    recovery;
    detection_delay;
    slo;
  }

let slo_equal a b =
  Float.equal a.max_detection b.max_detection
  && Float.equal a.max_reconverge b.max_reconverge
  && Float.equal a.max_blackhole b.max_blackhole
  && Float.equal a.max_stale b.max_stale
  && Float.equal a.max_hijacked b.max_hijacked

let kind_equal a b =
  match (a, b) with
  | Blackout x, Blackout y -> x.links = y.links && x.routers_down = y.routers_down
  | Depeer x, Depeer y -> x.stub_rank = y.stub_rank
  | Hijack x, Hijack y -> x.rogue_rank = y.rogue_rank
  | Provider_flap x, Provider_flap y ->
      x.stub_rank = y.stub_rank && x.cycles = y.cycles
      && Float.equal x.period y.period
      && Float.equal x.down_for y.down_for
  | Flash_crowd x, Flash_crowd y ->
      x.rate = y.rate && x.depth = y.depth && x.reserve = y.reserve
      && x.burst = y.burst
  | Slow_consumer x, Slow_consumer y ->
      x.shards = y.shards && x.victim = y.victim && x.slowdown = y.slowdown
      && x.spill_cap = y.spill_cap && x.flows = y.flows
  | ( ( Blackout _ | Depeer _ | Hijack _ | Provider_flap _ | Flash_crowd _
      | Slow_consumer _ ),
      _ ) ->
      false

let equal a b =
  String.equal a.name b.name
  && Int64.equal a.seed b.seed
  && a.transit = b.transit && a.stubs = b.stubs
  && a.deploy_domains = b.deploy_domains
  && a.probes = b.probes && a.ticks = b.ticks
  && Float.equal a.fault_at b.fault_at
  && Float.equal a.fault_until b.fault_until
  && kind_equal a.kind b.kind
  && Float.equal a.loss b.loss
  && Float.equal a.jitter b.jitter
  && Bool.equal a.recovery b.recovery
  && Float.equal a.detection_delay b.detection_delay
  && slo_equal a.slo b.slo

let kind_label = function
  | Blackout _ -> "blackout"
  | Depeer _ -> "depeer"
  | Hijack _ -> "hijack"
  | Provider_flap _ -> "provider-flap"
  | Flash_crowd _ -> "flash-crowd"
  | Slow_consumer _ -> "slow-consumer"

(* ------------------------------------------------------------------ *)
(* The built-in catalog                                                *)

let regional_blackout =
  make ~name:"regional-blackout" ~seed:42L
    ~slo:
      (slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.0)
    (Blackout { links = 3; routers_down = 1 })

let provider_depeer =
  make ~name:"provider-depeer" ~seed:43L
    ~slo:
      (slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.0)
    (Depeer { stub_rank = 0 })

let prefix_hijack =
  make ~name:"prefix-hijack" ~seed:44L
    ~slo:
      (slo ~detection:2.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.6)
    (Hijack { rogue_rank = 0 })

let flapping_provider =
  make ~name:"flapping-provider" ~seed:45L
    ~slo:
      (slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.0)
    (Provider_flap { stub_rank = 0; cycles = 2; period = 2.0; down_for = 1.0 })

(* overload drills: the fault is demand, not failure — the control
   plane keeps its session fabrics loss-free so the rows isolate the
   data plane's shedding behaviour *)
let flash_crowd =
  make ~name:"flash-crowd" ~seed:46L ~loss:0.0 ~jitter:0.0
    ~slo:
      (slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.0)
    (Flash_crowd { rate = 3000; depth = 6000; reserve = 2000; burst = 30 })

let slow_consumer =
  make ~name:"slow-consumer" ~seed:47L ~loss:0.0 ~jitter:0.0
    ~slo:
      (slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
         ~hijacked:0.0)
    (Slow_consumer
       { shards = 4; victim = 1; slowdown = 12; spill_cap = 8; flows = 96 })

let catalog =
  [
    regional_blackout;
    provider_depeer;
    prefix_hijack;
    flapping_provider;
    flash_crowd;
    slow_consumer;
  ]

let find name =
  List.find_opt (fun b -> String.equal b.name name) catalog

let with_intensity b intensity =
  if intensity <= 0.0 then invalid_arg "Drillbook.with_intensity: <= 0";
  let scale_i n = max 1 (int_of_float (Float.round (float_of_int n *. intensity))) in
  let kind =
    match b.kind with
    | Blackout { links; routers_down } ->
        Blackout { links = scale_i links; routers_down }
    | Depeer _ as k -> k
    | Hijack _ as k -> k
    | Provider_flap f -> Provider_flap { f with cycles = scale_i f.cycles }
    | Flash_crowd f -> Flash_crowd { f with burst = scale_i f.burst }
    | Slow_consumer s ->
        Slow_consumer { s with slowdown = max 2 (scale_i s.slowdown) }
  in
  { b with kind; loss = Float.min 0.9 (b.loss *. intensity) }

(* ------------------------------------------------------------------ *)
(* S-expression reader/writer                                          *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' ->
        toks := "(" :: !toks;
        incr i
    | ')' ->
        toks := ")" :: !toks;
        incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' ->
        (* comment to end of line *)
        while !i < n && s.[!i] <> '\n' do
          incr i
        done
    | _ ->
        let start = !i in
        while
          !i < n
          &&
          match s.[!i] with
          | '(' | ')' | ' ' | '\t' | '\n' | '\r' | ';' -> false
          | _ -> true
        do
          incr i
        done;
        toks := String.sub s start (!i - start) :: !toks);
  done;
  List.rev !toks

let parse_sexp s =
  let rec one = function
    | [] -> raise (Parse_error "unexpected end of input")
    | "(" :: rest ->
        let items, rest = many rest in
        (List items, rest)
    | ")" :: _ -> raise (Parse_error "unexpected )")
    | a :: rest -> (Atom a, rest)
  and many = function
    | [] -> raise (Parse_error "missing )")
    | ")" :: rest -> ([], rest)
    | toks ->
        let x, rest = one toks in
        let xs, rest = many rest in
        (x :: xs, rest)
  in
  match one (tokenize s) with
  | x, [] -> x
  | _, _ :: _ -> raise (Parse_error "trailing input after drill form")

let field name = function
  | List (Atom tag :: body) when String.equal tag name -> Some body
  | _ -> None

let lookup name body = List.find_map (field name) body

let atom1 what = function
  | [ Atom a ] -> a
  | _ -> raise (Parse_error (Printf.sprintf "%s expects one atom" what))

let int_field name body =
  Option.map (fun b -> int_of_string (atom1 name b)) (lookup name body)

let float_field name body =
  Option.map (fun b -> float_of_string (atom1 name b)) (lookup name body)

let bool_field name body =
  Option.map (fun b -> bool_of_string (atom1 name b)) (lookup name body)

let require what = function
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing (%s ...)" what))

let kind_of_sexp body =
  match require "kind" (lookup "kind" body) with
  | [ List (Atom "blackout" :: kb) ] ->
      Blackout
        {
          links = require "links" (int_field "links" kb);
          routers_down =
            Option.value ~default:0 (int_field "routers-down" kb);
        }
  | [ List (Atom "depeer" :: kb) ] ->
      Depeer { stub_rank = Option.value ~default:0 (int_field "stub-rank" kb) }
  | [ List (Atom "hijack" :: kb) ] ->
      Hijack
        { rogue_rank = Option.value ~default:0 (int_field "rogue-rank" kb) }
  | [ List (Atom "flap" :: kb) ] ->
      Provider_flap
        {
          stub_rank = Option.value ~default:0 (int_field "stub-rank" kb);
          cycles = require "cycles" (int_field "cycles" kb);
          period = require "period" (float_field "period" kb);
          down_for = require "down-for" (float_field "down-for" kb);
        }
  | [ List (Atom "flash-crowd" :: kb) ] ->
      Flash_crowd
        {
          rate = require "rate" (int_field "rate" kb);
          depth = require "depth" (int_field "depth" kb);
          reserve = Option.value ~default:0 (int_field "reserve" kb);
          burst = require "burst" (int_field "burst" kb);
        }
  | [ List (Atom "slow-consumer" :: kb) ] ->
      Slow_consumer
        {
          shards = require "shards" (int_field "shards" kb);
          victim = Option.value ~default:0 (int_field "victim" kb);
          slowdown = require "slowdown" (int_field "slowdown" kb);
          spill_cap = require "spill-cap" (int_field "spill-cap" kb);
          flows = require "flows" (int_field "flows" kb);
        }
  | _ ->
      raise
        (Parse_error
           "unknown (kind ...); want \
            blackout|depeer|hijack|flap|flash-crowd|slow-consumer")

let of_string s =
  try
    let body =
      match parse_sexp s with
      | List (Atom "drill" :: body) -> body
      | _ -> raise (Parse_error "top-level form must be (drill ...)")
    in
    let name = require "name" (Option.map (atom1 "name") (lookup "name" body)) in
    let topo = Option.value ~default:[] (lookup "topology" body) in
    let fault = require "fault" (lookup "fault" body) in
    let pol = Option.value ~default:[] (lookup "policy" body) in
    let slo_body = require "slo" (lookup "slo" body) in
    let slo =
      slo
        ~detection:(require "detection" (float_field "detection" slo_body))
        ~reconverge:(require "reconverge" (float_field "reconverge" slo_body))
        ~blackhole:(require "blackhole" (float_field "blackhole" slo_body))
        ~stale:(require "stale" (float_field "stale" slo_body))
        ~hijacked:(require "hijacked" (float_field "hijacked" slo_body))
    in
    let b =
      make ~name
        ?seed:
          (Option.map
             (fun b -> Int64.of_string (atom1 "seed" b))
             (lookup "seed" body))
        ?transit:(int_field "transit" topo)
        ?stubs:(int_field "stubs" topo)
        ?deploy_domains:(int_field "deploy" body)
        ?probes:(int_field "probes" body)
        ?ticks:(int_field "ticks" body)
        ?fault_at:(float_field "at" fault)
        ?fault_until:(float_field "until" fault)
        ?loss:(float_field "loss" pol)
        ?jitter:(float_field "jitter" pol)
        ?recovery:(bool_field "recovery" body)
        ?detection_delay:(float_field "detection-delay" body)
        ~slo (kind_of_sexp body)
    in
    Ok b
  with
  | Parse_error m -> Error ("drill parse error: " ^ m)
  | Invalid_argument m -> Error ("invalid drill: " ^ m)
  | Failure m -> Error ("drill parse error: " ^ m)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m

let ffmt f = Printf.sprintf "%.12g" f

let kind_to_sexp = function
  | Blackout { links; routers_down } ->
      Printf.sprintf "(blackout (links %d) (routers-down %d))" links
        routers_down
  | Depeer { stub_rank } -> Printf.sprintf "(depeer (stub-rank %d))" stub_rank
  | Hijack { rogue_rank } ->
      Printf.sprintf "(hijack (rogue-rank %d))" rogue_rank
  | Provider_flap { stub_rank; cycles; period; down_for } ->
      Printf.sprintf
        "(flap (stub-rank %d) (cycles %d) (period %s) (down-for %s))" stub_rank
        cycles (ffmt period) (ffmt down_for)
  | Flash_crowd { rate; depth; reserve; burst } ->
      Printf.sprintf
        "(flash-crowd (rate %d) (depth %d) (reserve %d) (burst %d))" rate depth
        reserve burst
  | Slow_consumer { shards; victim; slowdown; spill_cap; flows } ->
      Printf.sprintf
        "(slow-consumer (shards %d) (victim %d) (slowdown %d) (spill-cap %d) \
         (flows %d))"
        shards victim slowdown spill_cap flows

let to_sexp b =
  String.concat "\n"
    [
      "(drill";
      Printf.sprintf " (name %s)" b.name;
      Printf.sprintf " (seed %Ld)" b.seed;
      Printf.sprintf " (topology (transit %d) (stubs %d))" b.transit b.stubs;
      Printf.sprintf " (deploy %d)" b.deploy_domains;
      Printf.sprintf " (probes %d)" b.probes;
      Printf.sprintf " (ticks %d)" b.ticks;
      Printf.sprintf " (fault (at %s) (until %s))" (ffmt b.fault_at)
        (ffmt b.fault_until);
      Printf.sprintf " (kind %s)" (kind_to_sexp b.kind);
      Printf.sprintf " (policy (loss %s) (jitter %s))" (ffmt b.loss)
        (ffmt b.jitter);
      Printf.sprintf " (recovery %b)" b.recovery;
      Printf.sprintf " (detection-delay %s)" (ffmt b.detection_delay);
      Printf.sprintf
        " (slo (detection %s) (reconverge %s) (blackhole %s) (stale %s) \
         (hijacked %s)))"
        (ffmt b.slo.max_detection) (ffmt b.slo.max_reconverge)
        (ffmt b.slo.max_blackhole) (ffmt b.slo.max_stale)
        (ffmt b.slo.max_hijacked);
    ]
