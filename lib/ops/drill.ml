module Internet = Topology.Internet
module Rng = Topology.Rng
module Graph = Topology.Graph
module Igp = Routing.Igp
module Relationship = Topology.Relationship
module Bgp = Interdomain.Bgp
module Forward = Simcore.Forward
module Engine = Simcore.Engine
module Faults = Simcore.Faults
module Bgpdyn = Simcore.Bgpdyn
module Lsproto = Simcore.Lsproto
module Fib = Simcore.Fib
module Service = Anycast.Service
module Policy = Anycast.Policy
module Fabric = Vnbone.Fabric
module Bgpvn = Vnbone.Bgpvn
module Pump = Dataplane.Pump
module Linkq = Dataplane.Linkq
module Telemetry = Dataplane.Telemetry
module Workload = Dataplane.Workload
module Domainpool = Multicore.Domainpool

type tick_row = {
  tick : int;
  time : float;
  phase : string;
  ok : float;
  stale : float;
  hijacked : float;
  lost : float;
  looped : float;
}

(* Per-kind state for the overload drills (DESIGN.md §13): the flash
   crowd floods finite link queues under the serial pump; the slow
   consumer starves one shard of a cooperative domain pool. *)
type overload =
  | Flash of { lq : Linkq.t; burst : int; mutable seq : int }
  | Slow of {
      pool : Domainpool.t;
      wl : Workload.t;
      victim : int;
      slowdown : int;
      flows : int;
    }

type drop_reasons = {
  queue_full : int;
  shed_native : int;
  shed_encap : int;
  shed_control : int;
  fabric : int;
}

type run = {
  book : Drillbook.t;
  inet : Internet.t;
  env : Forward.env;
  service : Service.t;
  pump : Pump.t;
  engine : Engine.t;
  link_faults : Faults.t;  (* node ids = router ids *)
  session_faults : Faults.t;  (* node ids = domain ids, fifo *)
  bgpdyn : Bgpdyn.t;
  lsprotos : (int * Lsproto.t) list;  (* one per deployed domain *)
  mutable fabric : Fabric.t;
  mutable bgpvn : Bgpvn.t;
  mutable fib : Fib.t option;  (* lazily compiled for the looking glass *)
  probe_hosts : int list;
  victims : (int * int * float) list;  (* blackout link cuts *)
  crashed : int list;  (* blackout member crashes *)
  rogue : int option;  (* hijack originator domain *)
  victim_domain : int option;  (* depeer / flap victim stub *)
  depeered : int option;  (* the provider the victim lost *)
  deployed : int list;
  overload : overload option;
  horizon : float;
  refresh_order : int array;
  mutable refreshed : int;
  mutable detected_at : float option;
  mutable rows_rev : tick_row list;
  mutable events_rev : (float * string) list;
}

let book r = r.book
let internet r = r.inet
let env r = r.env
let service r = r.service
let engine r = r.engine
let now r = Engine.now r.engine
let pump r = r.pump
let link_faults r = r.link_faults
let session_faults r = r.session_faults
let bgpdyn r = r.bgpdyn
let lsprotos r = r.lsprotos
let fabric r = r.fabric
let bgpvn r = r.bgpvn
let deployed r = r.deployed
let rogue r = r.rogue
let victim_domain r = r.victim_domain
let detected_at r = r.detected_at
let rows r = List.rev r.rows_rev
let events r = List.rev r.events_rev
let group r = Service.group r.service

let linkq r =
  match r.overload with Some (Flash f) -> Some f.lq | _ -> None

let pool r =
  match r.overload with Some (Slow s) -> Some s.pool | _ -> None

let close r =
  match r.overload with Some (Slow s) -> Domainpool.close s.pool | _ -> ()

(* Where every lost packet went, for [evolvenet drill --report]: tail
   drops at full link queues, per-class deliberate sheds (link-queue
   precedence plus shard-spill backpressure), and control-plane
   messages the fault fabrics killed. *)
let drop_reasons r =
  let tels =
    Pump.telemetry r.pump
    :: (match r.overload with Some (Slow s) -> [ Domainpool.telemetry s.pool ] | _ -> [])
  in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 tels in
  let shed_of c = sum (fun t -> (Telemetry.cls t c).Telemetry.shed) in
  let lf = Faults.stats r.link_faults and sf = Faults.stats r.session_faults in
  {
    queue_full = sum (fun t -> (Telemetry.total t).Telemetry.queue_dropped);
    shed_native = shed_of Telemetry.Native;
    shed_encap = shed_of Telemetry.Encap;
    shed_control = shed_of Telemetry.Control;
    fabric =
      lf.Faults.lost + lf.Faults.cut + lf.Faults.dead + lf.Faults.shed
      + sf.Faults.lost + sf.Faults.cut + sf.Faults.dead + sf.Faults.shed;
  }

let fib r =
  match r.fib with
  | Some f -> f
  | None ->
      let f = Fib.compile r.env in
      r.fib <- Some f;
      f

let mark_dirty r =
  r.refreshed <- 0;
  r.fib <- None

let event r fmt =
  Printf.ksprintf
    (fun msg -> r.events_rev <- (Engine.now r.engine, msg) :: r.events_rev)
    fmt

(* the incident is over once the restore playbook has run, not at the
   scripted fault end — the operator's repair lags by detection_delay *)
let restore_time b =
  match b.Drillbook.kind with
  | Drillbook.Hijack _ -> b.Drillbook.fault_until
  | _ when b.Drillbook.recovery ->
      b.Drillbook.fault_until +. b.Drillbook.detection_delay
  | _ -> b.Drillbook.fault_until

let phase_at r t =
  if t < r.book.Drillbook.fault_at then "steady"
  else if t < restore_time r.book then "fault"
  else if r.refreshed < Internet.num_routers r.inet then "healing"
  else "recovered"

let phase r = phase_at r (Engine.now r.engine)

(* recompute the IGPs of the given domains over the (edited) graph,
   preserving each group's current membership — the E32 detour-install
   recipe, shared by the blackout playbook *)
let recompute_domains r ds =
  List.iter
    (fun d ->
      let old = r.env.Forward.igps.(d) in
      let fresh = Igp.compute r.inet ~domain:d ~flavor:(Igp.flavor old) in
      List.iter
        (fun grp ->
          match Igp.anycast_members old ~group:grp with
          | Some ms ->
              List.iter
                (fun m -> Igp.advertise_anycast fresh ~group:grp ~member:m)
                ms
          | None -> ())
        (Igp.groups old);
      r.env.Forward.igps.(d) <- fresh)
    ds

let victim_domains r =
  List.sort_uniq Int.compare
    (List.map
       (fun (a, _, _) -> (Internet.router r.inet a).Internet.rdomain)
       r.victims)

let repair_vnbone r =
  let alive = Faults.node_up r.link_faults in
  ignore (Fabric.probe_tunnels r.fabric ~alive);
  ignore (Fabric.reanchor r.fabric ~alive);
  Bgpvn.fail_members r.bgpvn ~alive;
  ignore (Bgpvn.converge r.bgpvn)

let rebuild_vnbone r =
  r.fabric <- Fabric.build r.service;
  r.bgpvn <- Bgpvn.create r.fabric;
  ignore (Bgpvn.converge r.bgpvn)

(* ------------------------------------------------------------------ *)
(* The per-tick probe round                                            *)

let in_fault_window r t =
  t >= r.book.Drillbook.fault_at && t < r.book.Drillbook.fault_until

(* the flash crowd: [burst] data packets from rotating sources swamp
   the finite link queues; their verdicts land in pump telemetry
   (queue drops, class sheds), not in the probe rows *)
let burst_payload = String.make 600 'f'

let flood r ~burst ~seq =
  let n = List.length r.probe_hosts in
  let addr = Service.address r.service in
  for k = 0 to burst - 1 do
    let h = List.nth r.probe_hosts ((seq + k) mod n) in
    let hh = Internet.endhost r.inet h in
    let p =
      Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr burst_payload
    in
    ignore (Pump.inject r.pump p ~entry:hh.Internet.access_router)
  done

(* detection for the overload kinds is by monitoring the overload
   counters themselves, not a scheduled operator event *)
let detect_overload r t_now fmt =
  Printf.ksprintf
    (fun msg ->
      if Option.is_none r.detected_at then begin
        r.detected_at <- Some t_now;
        event r "%s" msg
      end)
    fmt

(* One slow-consumer tick: run this tick's flows through the pool
   under the deterministic cooperative driver, starving the victim
   shard during the fault window; the row's fractions come from the
   pool's telemetry deltas instead of probe traces. *)
let tick_slow r i t_now ~pool ~wl ~victim ~slowdown ~flows =
  let batch = Workload.batch wl ~count:flows in
  let total = Workload.total_packets batch in
  let before = Telemetry.total (Domainpool.telemetry pool) in
  let d0 = before.Telemetry.delivered in
  let t0 = before.Telemetry.ttl_expired in
  let shed0 = Domainpool.shed pool in
  let slow = if in_fault_window r t_now then Some (victim, slowdown) else None in
  ignore (Domainpool.run_cooperative ?slow pool batch : int);
  let after = Telemetry.total (Domainpool.telemetry pool) in
  let delivered = after.Telemetry.delivered - d0 in
  let looped = after.Telemetry.ttl_expired - t0 in
  let shed_d = Domainpool.shed pool - shed0 in
  if shed_d > 0 then
    detect_overload r t_now
      "backpressure detected: shard %d starved, %d packet(s) shed (spill \
       high-water %d)"
      victim shed_d
      (Domainpool.overflow_high_water pool);
  let tf = float_of_int total in
  let ok = float_of_int delivered /. tf in
  let looped = float_of_int looped /. tf in
  r.rows_rev <-
    {
      tick = i;
      time = t_now;
      phase = phase_at r t_now;
      ok;
      stale = 0.0;
      hijacked = 0.0;
      lost = Float.max 0.0 (1.0 -. ok -. looped);
      looped;
    }
    :: r.rows_rev

let tick r i eng =
  let t_now = Engine.now eng in
  let n_routers = Internet.num_routers r.inet in
  (* line cards pick up control-plane changes in batches across a
     refresh window, as in E32 *)
  if r.refreshed < n_routers then begin
    let window = 3 in
    let batch_size = (n_routers + window - 1) / window in
    let upto = min n_routers (r.refreshed + batch_size) in
    let batch =
      Array.to_list (Array.sub r.refresh_order r.refreshed (upto - r.refreshed))
    in
    Pump.refresh ~routers:batch r.pump;
    r.refreshed <- upto
  end;
  match r.overload with
  | Some (Slow { pool; wl; victim; slowdown; flows }) ->
      tick_slow r i t_now ~pool ~wl ~victim ~slowdown ~flows
  | (Some (Flash _) | None) as ov ->
  let probe_cls =
    match ov with
    | Some (Flash f) ->
        if in_fault_window r t_now then begin
          flood r ~burst:f.burst ~seq:f.seq;
          f.seq <- f.seq + f.burst
        end;
        (* operational probes are control traffic: the link queues'
           reserve gives them drop precedence over the crowd *)
        Some Telemetry.Control
    | _ -> None
  in
  let members = Service.members r.service in
  let addr = Service.address r.service in
  let ok = ref 0 and stale = ref 0 and hij = ref 0 in
  let lost = ref 0 and looped = ref 0 in
  List.iter
    (fun h ->
      let hh = Internet.endhost r.inet h in
      let p =
        Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr "probe"
      in
      let tr = Pump.inject ?cls:probe_cls r.pump p ~entry:hh.Internet.access_router in
      let ended_in_rogue =
        match r.rogue with
        | Some rg -> (
            match List.rev tr.Forward.hops with
            | last :: _ -> (Internet.router r.inet last).Internet.rdomain = rg
            | [] -> false)
        | None -> false
      in
      match tr.Forward.outcome with
      | Forward.Router_accepted rr ->
          if ended_in_rogue then incr hij
          else if List.mem rr members && Faults.node_up r.link_faults rr then
            incr ok
          else incr stale
      | Forward.Endhost_accepted _ ->
          if ended_in_rogue then incr hij else incr stale
      | Forward.Dropped Forward.Ttl_expired -> incr looped
      | Forward.Dropped _ -> if ended_in_rogue then incr hij else incr lost)
    r.probe_hosts;
  (* a hijack is detected by monitoring the probe stream itself *)
  if !hij > 0 && Option.is_none r.detected_at then
    r.detected_at <- Some t_now;
  let total = float_of_int (List.length r.probe_hosts) in
  let frac c = float_of_int !c /. total in
  let phase = phase_at r t_now in
  r.rows_rev <-
    {
      tick = i;
      time = t_now;
      phase;
      ok = frac ok;
      stale = frac stale;
      hijacked = frac hij;
      lost = frac lost;
      looped = frac looped;
    }
    :: r.rows_rev;
  match ov with
  | Some (Flash f) ->
      (* serve the queues once per tick, then detect overload from the
         pump's own counters *)
      Linkq.tick f.lq;
      let tot = Telemetry.total (Pump.telemetry r.pump) in
      let drops = tot.Telemetry.queue_dropped + tot.Telemetry.shed in
      if drops > 0 then
        detect_overload r t_now
          "flash crowd detected: %d queue drop(s), %d shed"
          tot.Telemetry.queue_dropped tot.Telemetry.shed
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Fault script + operator playbook                                    *)

let arm r =
  let b = r.book in
  let at = b.Drillbook.fault_at and until = b.Drillbook.fault_until in
  let detect_time = at +. b.Drillbook.detection_delay in
  let restore_time = until +. b.Drillbook.detection_delay in
  let g = r.inet.Internet.graph in
  (match b.Drillbook.kind with
  | Drillbook.Flash_crowd _ | Drillbook.Slow_consumer _ ->
      (* the overload kinds inject demand inside the tick itself and
         detect from the overload counters — no fault-fabric script *)
      ()
  | Drillbook.Blackout _ ->
      List.iter
        (fun (a, b', _) ->
          Faults.flap_link r.link_faults r.engine ~a ~b:b' ~down_at:at
            ~up_at:until)
        r.victims;
      List.iter
        (fun n ->
          Faults.schedule_outage r.link_faults r.engine ~node:n ~at
            ~duration:(until -. at))
        r.crashed;
      if b.Drillbook.recovery then begin
        Engine.schedule_at r.engine ~time:detect_time (fun eng ->
            r.detected_at <- Some (Engine.now eng);
            event r
              "blackout detected: rerouting around %d link(s), withdrawing %d \
               member(s)"
              (List.length r.victims) (List.length r.crashed);
            List.iter (fun m -> Service.remove_member r.service ~router:m)
              r.crashed;
            List.iter (fun (a, b', _) -> Graph.remove_edge g a b') r.victims;
            List.iter
              (fun (a, b', _) ->
                let d = (Internet.router r.inet a).Internet.rdomain in
                match List.assoc_opt d r.lsprotos with
                | Some ls -> Lsproto.link_failed ls eng a b'
                | None -> ())
              r.victims;
            recompute_domains r (victim_domains r);
            repair_vnbone r;
            mark_dirty r);
        Engine.schedule_at r.engine ~time:restore_time (fun eng ->
            event r "blackout over: links restored, members re-enrolled";
            List.iter (fun (a, b', w) -> Graph.add_edge g a b' w) r.victims;
            List.iter
              (fun (a, b', _) ->
                let d = (Internet.router r.inet a).Internet.rdomain in
                match List.assoc_opt d r.lsprotos with
                | Some ls -> Lsproto.link_restored ls eng a b'
                | None -> ())
              r.victims;
            List.iter (fun m -> Service.add_member r.service ~router:m)
              r.crashed;
            recompute_domains r (victim_domains r);
            rebuild_vnbone r;
            mark_dirty r)
      end
  | Drillbook.Depeer _ -> (
      match (r.victim_domain, r.depeered) with
      | Some v, Some p ->
          Faults.flap_link r.session_faults r.engine ~a:v ~b:p ~down_at:at
            ~up_at:until;
          List.iter
            (fun il ->
              Faults.flap_link r.link_faults r.engine ~a:il.Internet.a_router
                ~b:il.Internet.b_router ~down_at:at ~up_at:until)
            (Internet.interlinks_between r.inet v p)
      | _ -> ())
  | Drillbook.Provider_flap { cycles; period; down_for; _ } -> (
      match (r.victim_domain, r.depeered) with
      | Some v, Some p ->
          Faults.schedule_flap_train r.session_faults r.engine ~a:v ~b:p
            ~start:at ~cycles ~period ~down_for;
          List.iter
            (fun il ->
              Faults.schedule_flap_train r.link_faults r.engine
                ~a:il.Internet.a_router ~b:il.Internet.b_router ~start:at
                ~cycles ~period ~down_for)
            (Internet.interlinks_between r.inet v p)
      | _ -> ())
  | Drillbook.Hijack _ -> (
      match r.rogue with
      | Some rg ->
          Engine.schedule_at r.engine ~time:at (fun eng ->
              event r "rogue domain %d originates the anycast prefix %s" rg
                (Netcore.Prefix.to_string (group r));
              Bgp.originate r.env.Forward.bgp ~domain:rg (group r);
              ignore (Forward.reconverge r.env);
              Bgpdyn.originate r.bgpdyn eng ~domain:rg (group r);
              mark_dirty r);
          Engine.schedule_at r.engine ~time:until (fun eng ->
              event r "rogue origin withdrawn; routes converge back";
              Bgp.withdraw_origin r.env.Forward.bgp ~domain:rg (group r);
              ignore (Forward.reconverge r.env);
              Bgpdyn.withdraw r.bgpdyn eng ~domain:rg (group r);
              mark_dirty r)
      | None -> ()));
  (* session-teardown playbook: withdraw the cut-off origin so the rest
     of the internet reroutes to the surviving members, reinstate it
     once the session is back (manual flap dampening for the flap
     drill) *)
  (match b.Drillbook.kind with
  | Drillbook.Depeer _ | Drillbook.Provider_flap _
    when b.Drillbook.recovery -> (
      match r.victim_domain with
      | Some v ->
          Engine.schedule_at r.engine ~time:detect_time (fun _ ->
              r.detected_at <- Some detect_time;
              event r
                "session loss detected: withdrawing domain %d's anycast origin"
                v;
              Bgp.withdraw_origin r.env.Forward.bgp ~domain:v (group r);
              ignore (Forward.reconverge r.env);
              mark_dirty r);
          Engine.schedule_at r.engine ~time:restore_time (fun _ ->
              event r "session restored: re-originating at domain %d" v;
              Bgp.originate r.env.Forward.bgp ~domain:v (group r);
              ignore (Forward.reconverge r.env);
              mark_dirty r)
      | None -> ())
  | _ -> ());
  for i = 1 to b.Drillbook.ticks do
    Engine.schedule_at r.engine ~time:(float_of_int i) (fun eng ->
        tick r i eng)
  done

(* ------------------------------------------------------------------ *)
(* Preparation                                                         *)

let prepare ?params (b : Drillbook.t) =
  let params =
    match params with
    | Some p -> { p with Internet.seed = b.Drillbook.seed }
    | None ->
        {
          Internet.default_params with
          Internet.transit_domains = b.Drillbook.transit;
          stubs_per_transit = b.Drillbook.stubs;
          seed = b.Drillbook.seed;
        }
  in
  let inet = Internet.build params in
  let policy = Policy.create () in
  let env = Forward.make_env ~config:(Policy.bgp_config policy) inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  let rng = Rng.create (Int64.add b.Drillbook.seed 7200L) in
  let stubs =
    Array.to_list inet.Internet.domains
    |> List.filter_map (fun d ->
           if d.Internet.is_transit then None else Some d.Internet.did)
  in
  let deployed =
    Rng.sample rng (min b.Drillbook.deploy_domains (List.length stubs)) stubs
    |> List.sort Int.compare
  in
  Service.add_participants service
    (List.map
       (fun d ->
         (d, Array.to_list (Internet.domain inet d).Internet.router_ids))
       deployed);
  let non_deployed =
    List.filter (fun d -> not (List.mem d deployed)) stubs
  in
  let rogue =
    match b.Drillbook.kind with
    | Drillbook.Hijack { rogue_rank } -> (
        match non_deployed with
        | [] -> None
        | l -> Some (List.nth l (rogue_rank mod List.length l)))
    | _ -> None
  in
  let victim_domain =
    match b.Drillbook.kind with
    | Drillbook.Depeer { stub_rank }
    | Drillbook.Provider_flap { stub_rank; _ } -> (
        match deployed with
        | [] -> None
        | l -> Some (List.nth l (stub_rank mod List.length l)))
    | _ -> None
  in
  let depeered =
    match victim_domain with
    | None -> None
    | Some v ->
        Internet.neighbor_domains inet v
        |> List.filter (fun (_, rel) ->
               Relationship.equal rel Relationship.Provider)
        |> List.map fst |> List.sort Int.compare
        |> fun l -> (match l with [] -> None | p :: _ -> Some p)
  in
  let probe_hosts =
    Rng.sample rng b.Drillbook.probes
      (Array.to_list inet.Internet.endhosts
      |> List.map (fun h -> h.Internet.hid))
  in
  let pump = Pump.create env in
  let engine = Engine.create () in
  let lossy_policy =
    if b.Drillbook.loss > 0.0 || b.Drillbook.jitter > 0.0 then
      Faults.lossy ~jitter:b.Drillbook.jitter b.Drillbook.loss
    else Faults.reliable
  in
  let link_faults =
    Faults.create
      ~policy:(fun ~src:_ ~dst:_ -> lossy_policy)
      (Int64.add b.Drillbook.seed 7201L)
  in
  let session_faults =
    Faults.create
      ~policy:(fun ~src:_ ~dst:_ -> lossy_policy)
      ~fifo:true
      (Int64.add b.Drillbook.seed 7202L)
  in
  Pump.set_link_filter pump (Faults.link_up link_faults);
  let horizon = float_of_int b.Drillbook.ticks +. 1.0 in
  let bgpdyn =
    Bgpdyn.create ~config:(Policy.bgp_config policy) ~faults:session_faults
      ~jitter:0.1 inet
  in
  Bgpdyn.originate_all_domain_prefixes bgpdyn engine;
  let grp = Service.group service in
  List.iter (fun d -> Bgpdyn.originate bgpdyn engine ~domain:d grp) deployed;
  Bgpdyn.enable_timers bgpdyn engine ~until:horizon;
  let lsprotos =
    List.map
      (fun d ->
        let ls = Lsproto.create ~faults:link_faults inet ~domain:d in
        Lsproto.start ls engine;
        List.iter
          (fun m -> Lsproto.advertise_anycast ls engine ~router:m grp)
          (Service.members_in service ~domain:d);
        (d, ls))
      deployed
  in
  let fabric = Fabric.build service in
  let bgpvn = Bgpvn.create fabric in
  ignore (Bgpvn.converge bgpvn);
  (* scout which deployed-domain intra links probe traffic actually
     crosses, so a blackout hits live paths (as E32 does) *)
  let victims, crashed =
    match b.Drillbook.kind with
    | Drillbook.Blackout { links; routers_down } ->
        let addr = Service.address service in
        (* with every router of a deployed domain a member, probes
           terminate at the border member they first reach, so live
           paths have no intra-domain hops to cut; the blackout instead
           takes out the local adjacency of the on-path routers in the
           region — the links the reroute and the repair depend on *)
        let seen = Hashtbl.create 64 in
        let acceptors = ref [] in
        List.iter
          (fun h ->
            let hh = Internet.endhost inet h in
            let p =
              Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr
                "scout"
            in
            let tr = Pump.inject pump p ~entry:hh.Internet.access_router in
            (match tr.Forward.outcome with
            | Forward.Router_accepted rr -> acceptors := rr :: !acceptors
            | _ -> ());
            List.iter
              (fun a ->
                let da = (Internet.router inet a).Internet.rdomain in
                if List.mem da deployed then
                  List.iter
                    (fun (nb, _) ->
                      if (Internet.router inet nb).Internet.rdomain = da then
                        Hashtbl.replace seen (min a nb, max a nb) ())
                    (Graph.neighbors inet.Internet.graph a))
              tr.Forward.hops)
          probe_hosts;
        let candidates =
          Hashtbl.fold (fun k () acc -> k :: acc) seen []
          |> List.sort (fun (a1, b1) (a2, b2) ->
                 match Int.compare a1 a2 with
                 | 0 -> Int.compare b1 b2
                 | c -> c)
        in
        let victims =
          Rng.sample rng (min links (List.length candidates)) candidates
          |> List.filter_map (fun (a, b') ->
                 Graph.edge_weight inet.Internet.graph a b'
                 |> Option.map (fun w -> (a, b', w)))
        in
        let focus =
          match victims with
          | (a, _, _) :: _ -> (Internet.router inet a).Internet.rdomain
          | [] -> ( match deployed with d :: _ -> d | [] -> 0)
        in
        (* crash members that actually accept probe traffic, so the
           blackout bites delivery until the playbook reroutes it *)
        let pool_all = Service.members_in service ~domain:focus in
        let pool =
          match
            List.sort_uniq Int.compare !acceptors
            |> List.filter (fun rr ->
                   (Internet.router inet rr).Internet.rdomain = focus)
          with
          | [] -> pool_all
          | hit -> hit
        in
        (* never crash the whole region: keep at least one member *)
        let n_crash =
          min routers_down
            (max 0 (min (List.length pool) (List.length pool_all - 1)))
        in
        (victims, Rng.sample rng n_crash pool)
    | _ -> ([], [])
  in
  let refresh_order =
    let arr = Array.init (Internet.num_routers inet) Fun.id in
    Rng.shuffle rng arr;
    arr
  in
  let overload =
    match b.Drillbook.kind with
    | Drillbook.Flash_crowd { rate; depth; reserve; burst } ->
        let lq = Linkq.of_internet ~control_reserve:reserve ~rate ~depth inet in
        Pump.attach_linkq pump lq;
        Some (Flash { lq; burst; seq = 0 })
    | Drillbook.Slow_consumer { shards; victim; slowdown; spill_cap; flows } ->
        (* a tiny topology override may have fewer routers than the
           book's shard count — clamp, keeping the victim in range *)
        let shards = max 1 (min shards (Internet.num_routers inet)) in
        let pool =
          (* tight rings and paced injection (two fresh flows per pass)
             turn the tick's batch into a sustained arrival process, so
             starving the victim builds real backlog instead of one
             absorbable burst *)
          Domainpool.create ~ring_capacity:spill_cap ~spill_cap
            ~inject_per_pass:2 env ~shards
            ~seed:(Int64.add b.Drillbook.seed 7300L)
        in
        let wl =
          Workload.create inet Workload.Uniform
            ~seed:(Int64.add b.Drillbook.seed 7301L)
        in
        Some (Slow { pool; wl; victim = victim mod shards; slowdown; flows })
    | _ -> None
  in
  let r =
    {
      book = b;
      inet;
      env;
      service;
      pump;
      engine;
      link_faults;
      session_faults;
      bgpdyn;
      lsprotos;
      fabric;
      bgpvn;
      fib = None;
      probe_hosts;
      victims;
      crashed;
      rogue;
      victim_domain;
      depeered;
      deployed;
      overload;
      horizon;
      refresh_order;
      refreshed = Internet.num_routers inet;
      detected_at = None;
      rows_rev = [];
      events_rev = [];
    }
  in
  arm r;
  r

let run_until r ~time = ignore (Engine.run ~until:time r.engine)
let execute r = ignore (Engine.run r.engine)

let complete ?params b =
  let r = prepare ?params b in
  execute r;
  r

(* ------------------------------------------------------------------ *)
(* Transcript                                                          *)

let transcript r =
  let b = r.book in
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  p "drill %s (seed %Ld, %s)" b.Drillbook.name b.Drillbook.seed
    (Drillbook.kind_label b.Drillbook.kind);
  p "  topology: %d transit x %d stubs; deploy %d domain(s); %d probes over \
     %d ticks"
    b.Drillbook.transit b.Drillbook.stubs b.Drillbook.deploy_domains
    b.Drillbook.probes b.Drillbook.ticks;
  p "  fault: [%.2f, %.2f]  loss %.3f  jitter %.3f  recovery %s (detection \
     delay %.2f)"
    b.Drillbook.fault_at b.Drillbook.fault_until b.Drillbook.loss
    b.Drillbook.jitter
    (if b.Drillbook.recovery then "on" else "off")
    b.Drillbook.detection_delay;
  p "  deployed domains: %s"
    (String.concat " " (List.map string_of_int r.deployed));
  (match r.victims with
  | [] -> ()
  | vs ->
      p "  victim links: %s"
        (String.concat " "
           (List.map (fun (a, b', _) -> Printf.sprintf "%d-%d" a b') vs)));
  (match r.crashed with
  | [] -> ()
  | cs ->
      p "  crashed members: %s" (String.concat " " (List.map string_of_int cs)));
  (match r.rogue with
  | Some rg -> p "  rogue domain: %d" rg
  | None -> ());
  (match (r.victim_domain, r.depeered) with
  | Some v, Some pr -> p "  victim domain %d, provider %d" v pr
  | _ -> ());
  p "events:";
  List.iter (fun (t, m) -> p "  t=%.2f %s" t m) (events r);
  p "ticks:";
  p "  %4s %6s %-10s %6s %6s %6s %6s %6s" "tick" "time" "phase" "ok" "stale"
    "hijack" "lost" "loop";
  List.iter
    (fun row ->
      p "  %4d %6.2f %-10s %6.3f %6.3f %6.3f %6.3f %6.3f" row.tick row.time
        row.phase row.ok row.stale row.hijacked row.lost row.looped)
    (rows r);
  (match r.overload with
  | None -> ()
  | Some _ ->
      let d = drop_reasons r in
      p
        "drops: queue-full %d  shed native %d encap %d control %d  \
         fault-fabric %d"
        d.queue_full d.shed_native d.shed_encap d.shed_control d.fabric);
  (match r.detected_at with
  | Some t -> p "detected at t=%.2f" t
  | None -> p "never detected");
  Buffer.contents buf
