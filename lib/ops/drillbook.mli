(** Declarative incident-drill scenarios.

    The paper's resilience claims — anycast "naturally lends itself to
    fault tolerance" (§2.2), vN-Bone partitions are "easily detected
    and repaired" (§3.3) — deserve more than two hand-written
    experiments. A drillbook entry is a complete, replayable incident
    script: a topology, an IPvN deployment, a per-link
    {!Simcore.Faults.policy}, a timed fault of one of four archetypal
    kinds, and the recovery SLOs the operator holds the deployment to.
    {!Drill} replays it deterministically; {!Slo} grades the outcome.

    Scenarios can be built in OCaml ({!make}, or the built-in
    {!catalog}) or loaded from the small s-expression format under
    [examples/drills/] ({!load}); {!to_sexp}/{!of_string} round-trip,
    which the test-suite asserts. *)

type slo = {
  max_detection : float;  (** seconds from fault onset to detection *)
  max_reconverge : float;
      (** seconds from fault onset until delivery is back at (and
          stays at) its pre-fault level *)
  max_blackhole : float;  (** integrated lost-probe seconds *)
  max_stale : float;  (** worst acceptable mean stale-delivery fraction *)
  max_hijacked : float;  (** worst acceptable peak delivery-to-rogue fraction *)
}

(** The incident archetypes, mirroring the failure modes the paper
    argues anycast evolvability must survive — plus two overload
    archetypes where the incident is demand, not failure
    (DESIGN.md §13). *)
type kind =
  | Blackout of { links : int; routers_down : int }
      (** a regional event: correlated cuts of [links] live
          intra-domain links plus [routers_down] IPvN member crashes *)
  | Depeer of { stub_rank : int }
      (** the [stub_rank]-th deployed stub loses its primary provider:
          BGP session torn down and the border links cut *)
  | Hijack of { rogue_rank : int }
      (** the [rogue_rank]-th non-deployed stub originates the IPvN
          anycast prefix (§3.2 Option 1 abuse) and blackholes what it
          attracts *)
  | Provider_flap of {
      stub_rank : int;
      cycles : int;
      period : float;
      down_for : float;
    }
      (** the deployed stub's primary provider link flaps: [cycles]
          down/up cycles, down [down_for] out of every [period] —
          replayed through {!Simcore.Faults.schedule_flap_train} *)
  | Flash_crowd of { rate : int; depth : int; reserve : int; burst : int }
      (** every link gets a {!Dataplane.Linkq} of [depth] bytes
          draining [rate] bytes per tick with [reserve] bytes held for
          control traffic; during the fault window [burst] extra data
          packets per tick saturate the queues while control probes
          must keep flowing — graceful degradation, not a cliff *)
  | Slow_consumer of {
      shards : int;
      victim : int;
      slowdown : int;
      spill_cap : int;
      flows : int;
    }
      (** a [shards]-way {!Multicore.Domainpool} forwards [flows]
          flows per tick under the deterministic cooperative driver;
          during the fault window shard [victim] runs one pass every
          [slowdown] rounds, so its peers' rings back up into
          [spill_cap]-bounded spill buffers and shedding begins *)

type t = {
  name : string;
  seed : int64;  (** every random draw of the drill derives from this *)
  transit : int;  (** transit domains of the generated internet *)
  stubs : int;  (** stub domains per transit *)
  deploy_domains : int;  (** stubs that deploy IPvN (all their routers) *)
  probes : int;  (** endhosts probing the anycast address each tick *)
  ticks : int;  (** drill length in 1-second traffic ticks *)
  fault_at : float;  (** fault onset (engine time) *)
  fault_until : float;  (** scripted end of the fault *)
  kind : kind;
  loss : float;  (** control-plane message loss probability per link *)
  jitter : float;  (** control-plane per-message jitter bound *)
  recovery : bool;  (** whether the operator playbook runs on detection *)
  detection_delay : float;  (** monitoring latency before the playbook fires *)
  slo : slo;
}

val slo :
  detection:float ->
  reconverge:float ->
  blackhole:float ->
  stale:float ->
  hijacked:float ->
  slo
(** Validating constructor.
    @raise Invalid_argument on negative budgets or fractions outside
    [0,1]. *)

val make :
  name:string ->
  ?seed:int64 ->
  ?transit:int ->
  ?stubs:int ->
  ?deploy_domains:int ->
  ?probes:int ->
  ?ticks:int ->
  ?fault_at:float ->
  ?fault_until:float ->
  ?loss:float ->
  ?jitter:float ->
  ?recovery:bool ->
  ?detection_delay:float ->
  slo:slo ->
  kind ->
  t
(** Validating builder; defaults give a default-params-sized internet,
    40 probes over 12 ticks with the fault in [\[3, 7\]].
    @raise Invalid_argument when any field is out of range (empty
    name, non-positive sizes, fault window outside [\[0, ticks\]],
    loss outside [0,1], or a kind-specific violation such as
    [down_for] outside [(0, period]]). *)

val equal : t -> t -> bool
(** Structural equality (explicit per field — no polymorphic compare),
    used by the loader round-trip tests. *)

val kind_label : kind -> string
(** ["blackout" | "depeer" | "hijack" | "provider-flap" |
    "flash-crowd" | "slow-consumer"]. *)

(** {2 The built-in catalog} *)

val regional_blackout : t
val provider_depeer : t
val prefix_hijack : t
val flapping_provider : t

val flash_crowd : t
(** Queue-saturating data burst with control probes riding the
    reserve — the overload drill CI runs as its SLO gate. *)

val slow_consumer : t
(** One starved shard under the cooperative pool driver — sustained
    backpressure with bounded spill and deterministic shedding. *)

val catalog : t list
(** The six archetypes above, in that order — what experiment E34
    sweeps and [evolvenet drill --name] looks up. *)

val find : string -> t option
(** Catalog lookup by name. *)

val with_intensity : t -> float -> t
(** Scale the drill's severity: message loss and the kind's magnitude
    knob (blackout link count, flap cycle count, flash-crowd burst,
    slow-consumer slowdown) are multiplied by the factor (loss capped
    at 0.9). Intensity 1.0 is the identity; E34 sweeps it.
    @raise Invalid_argument when the factor is not positive. *)

(** {2 File format} *)

val of_string : string -> (t, string) result
(** Parse one [(drill ...)] s-expression; [;] starts a line comment.
    Unknown or malformed forms yield [Error] with a message. *)

val load : string -> (t, string) result
(** Read a drill file (see [examples/drills/]). *)

val to_sexp : t -> string
(** Canonical s-expression rendering; [of_string (to_sexp b)] equals
    [b] ({!equal}). *)
