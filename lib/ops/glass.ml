module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Bgp = Interdomain.Bgp
module Forward = Simcore.Forward
module Faults = Simcore.Faults
module Bgpdyn = Simcore.Bgpdyn
module Lsproto = Simcore.Lsproto
module Fib = Simcore.Fib
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Pump = Dataplane.Pump
module Telemetry = Dataplane.Telemetry
module Prefix = Netcore.Prefix
module Ipv4 = Netcore.Ipv4
module Lpm = Netcore.Lpm

type query =
  | Route of { domain : int; addr : Ipv4.t }
  | Rib of { domain : int }
  | Fib_table of { router : int }
  | Tunnels
  | Sessions of { domain : int }
  | Health

let usage =
  "glass queries: route <domain> <addr> | rib <domain> | fib <router> | \
   tunnels | sessions <domain> | health"

let parse args =
  let int_arg what s =
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "glass: %s must be an integer, got %S" what s)
  in
  match args with
  | [ "route"; d; a ] -> (
      match (int_arg "domain" d, Ipv4.of_string_opt a) with
      | Error e, _ -> Error e
      | Ok _, None -> Error (Printf.sprintf "glass: bad address %S" a)
      | Ok domain, Some addr -> Ok (Route { domain; addr }))
  | [ "rib"; d ] -> Result.map (fun domain -> Rib { domain }) (int_arg "domain" d)
  | [ "fib"; rr ] ->
      Result.map (fun router -> Fib_table { router }) (int_arg "router" rr)
  | [ "tunnels" ] -> Ok Tunnels
  | [ "sessions"; d ] ->
      Result.map (fun domain -> Sessions { domain }) (int_arg "domain" d)
  | [ "health" ] -> Ok Health
  | _ -> Error usage

let path_to_string = function
  | None -> "(none)"
  | Some p -> String.concat " " (List.map string_of_int p)

let check_domain r d =
  if d < 0 || d >= Internet.num_domains (Drill.internet r) then
    Error (Printf.sprintf "glass: no such domain %d" d)
  else Ok ()

let check_router r rr =
  if rr < 0 || rr >= Internet.num_routers (Drill.internet r) then
    Error (Printf.sprintf "glass: no such router %d" rr)
  else Ok ()

(* every query answer leads with the sim time, so captures from
   different [--at] points are self-describing *)
let header r what = Printf.sprintf "glass %s (t=%.2f)" what (Drill.now r)

let route_lines r ~domain ~addr =
  let env = Drill.env r in
  match Bgp.lookup env.Forward.bgp ~domain addr with
  | None ->
      [
        header r (Printf.sprintf "route %s at domain %d" (Ipv4.to_string addr) domain);
        "  no route";
      ]
  | Some rt ->
      let live = Bgpdyn.best_path (Drill.bgpdyn r) ~domain rt.Bgp.prefix in
      [
        header r (Printf.sprintf "route %s at domain %d" (Ipv4.to_string addr) domain);
        Printf.sprintf "  rib:  %s via as-path %s"
          (Prefix.to_string rt.Bgp.prefix)
          (path_to_string (Some rt.Bgp.as_path));
        Printf.sprintf "  live: as-path %s"
          (path_to_string live);
      ]

let rib_lines r ~domain =
  let inet = Drill.internet r in
  let grp = Drill.group r in
  let prefixes =
    (grp, true)
    :: (Array.to_list inet.Internet.domains
       |> List.map (fun d -> (d.Internet.prefix, false)))
    |> List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2)
  in
  header r (Printf.sprintf "rib at domain %d, %d prefixes" domain (List.length prefixes))
  :: List.map
       (fun (p, is_group) ->
         let env = Drill.env r in
         let rib_path =
           Option.map (fun rt -> rt.Bgp.as_path)
             (Bgp.route_to env.Forward.bgp ~domain p)
         in
         let live = Bgpdyn.best_path (Drill.bgpdyn r) ~domain p in
         Printf.sprintf "  %-18s%s via %s | live %s" (Prefix.to_string p)
           (if is_group then " [anycast]" else "")
           (path_to_string rib_path) (path_to_string live))
       prefixes

let fib_lines r ~router =
  let f = Drill.fib r in
  let entries =
    Lpm.bindings (Fib.table f ~router)
    |> List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2)
  in
  let action_to_string = function
    | Fib.Local -> "local"
    | Fib.Attached h -> Printf.sprintf "endhost %d" h
    | Fib.Next_hop n -> Printf.sprintf "next-hop %d" n
  in
  header r (Printf.sprintf "fib at router %d, %d entries" router (List.length entries))
  :: List.map
       (fun (p, a) ->
         Printf.sprintf "  %-18s -> %s" (Prefix.to_string p)
           (action_to_string a))
       entries

let tunnel_kind = function
  | `Intra -> "intra"
  | `Inter_policy -> "inter-policy"
  | `Inter_bootstrap -> "bootstrap"
  | `Manual -> "manual"

let tunnels_lines r =
  let alive = Faults.node_up (Drill.link_faults r) in
  let ts =
    Fabric.tunnels (Drill.fabric r)
    |> List.sort (fun a b ->
           match Int.compare a.Fabric.from_router b.Fabric.from_router with
           | 0 -> Int.compare a.Fabric.to_router b.Fabric.to_router
           | c -> c)
  in
  let up, down =
    List.partition
      (fun t -> alive t.Fabric.from_router && alive t.Fabric.to_router)
      ts
  in
  header r
    (Printf.sprintf "tunnels, %d up / %d down" (List.length up)
       (List.length down))
  :: List.map
       (fun t ->
         Printf.sprintf "  r%d <-> r%d  %-12s metric %.2f  %s"
           t.Fabric.from_router t.Fabric.to_router
           (tunnel_kind t.Fabric.kind) t.Fabric.underlay_metric
           (if alive t.Fabric.from_router && alive t.Fabric.to_router then
              "up"
            else "down"))
       ts

let sessions_lines r ~domain =
  let inet = Drill.internet r in
  let sf = Drill.session_faults r in
  let neighbors =
    Internet.neighbor_domains inet domain
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  header r (Printf.sprintf "sessions at domain %d" domain)
  :: List.map
       (fun (n, rel) ->
         let state =
           if not (Faults.node_up sf n) then "peer down"
           else if not (Faults.link_up sf domain n) then "torn down"
           else "established"
         in
         Printf.sprintf "  neighbor %-4d (%s)  %s" n
           (Relationship.to_string rel) state)
       neighbors

let stats_line tag (s : Faults.stats) =
  Printf.sprintf
    "  %s: sent=%d delivered=%d lost=%d cut=%d dead=%d shed=%d dup=%d \
     reordered=%d"
    tag s.Faults.sent s.Faults.delivered s.Faults.lost s.Faults.cut
    s.Faults.dead s.Faults.shed s.Faults.duplicated s.Faults.reordered

let health_lines r =
  let b = Drill.book r in
  let bs = Bgpdyn.stats (Drill.bgpdyn r) in
  let tel = Telemetry.total (Pump.telemetry (Drill.pump r)) in
  header r
    (Printf.sprintf "health, drill %s phase=%s" b.Drillbook.name
       (Drill.phase r))
  :: (match Drill.detected_at r with
     | Some t -> Printf.sprintf "  detected: t=%.2f" t
     | None -> "  detected: no")
  :: stats_line "session fabric" (Faults.stats (Drill.session_faults r))
  :: stats_line "link fabric" (Faults.stats (Drill.link_faults r))
  :: Printf.sprintf "  bgp: updates=%d keepalives=%d resets=%d" bs.Bgpdyn.updates
       bs.Bgpdyn.keepalives bs.Bgpdyn.resets
  :: Printf.sprintf "  vn-bone: connected=%b tunnels=%d"
       (Fabric.is_connected (Drill.fabric r))
       (List.length (Fabric.tunnels (Drill.fabric r)))
  :: Printf.sprintf "  traffic: packets=%d delivered=%d dropped=%d ttl=%d"
       tel.Telemetry.packets tel.Telemetry.delivered tel.Telemetry.dropped
       tel.Telemetry.ttl_expired
  :: List.map
       (fun (d, ls) ->
         Printf.sprintf "  lsdb domain %d: synchronized=%b" d
           (Lsproto.lsdb_synchronized ls))
       (Drill.lsprotos r)

let render r q =
  let lines =
    match q with
    | Route { domain; addr } -> (
        match check_domain r domain with
        | Error e -> [ e ]
        | Ok () -> route_lines r ~domain ~addr)
    | Rib { domain } -> (
        match check_domain r domain with
        | Error e -> [ e ]
        | Ok () -> rib_lines r ~domain)
    | Fib_table { router } -> (
        match check_router r router with
        | Error e -> [ e ]
        | Ok () -> fib_lines r ~router)
    | Tunnels -> tunnels_lines r
    | Sessions { domain } -> (
        match check_domain r domain with
        | Error e -> [ e ]
        | Ok () -> sessions_lines r ~domain)
    | Health -> health_lines r
  in
  String.concat "\n" lines
