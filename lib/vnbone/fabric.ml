module Internet = Topology.Internet
module Graph = Topology.Graph
module Forward = Simcore.Forward
module Service = Anycast.Service
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4
module Spt = Routing.Spt
module Igp = Routing.Igp

type tunnel = {
  from_router : int;
  to_router : int;
  underlay_metric : float;
  kind : [ `Intra | `Inter_policy | `Inter_bootstrap | `Manual ];
}

type t = {
  service : Service.t;
  members : int array;
  index : (int, int) Hashtbl.t;  (* router id -> vN node *)
  graph : Graph.t;
  mutable tunnels : tunnel list;
  anchor : int option;
  spt_cache : (int, Spt.t) Hashtbl.t;  (* vN node -> SPT over the vN graph *)
}

let service t = t.service
let members t = t.members
let graph t = t.graph
let tunnels t = t.tunnels
let anchor_domain t = t.anchor
let index_of t r = Hashtbl.find_opt t.index r

let underlay_metric_env env a b =
  if a = b then 0.0
  else begin
    let dst = (Internet.router env.Forward.inet b).raddr in
    let probe = Packet.make_data ~src:Ipv4.any ~dst "tunnel-probe" in
    let trace = Forward.forward env probe ~entry:a in
    if Forward.delivered trace then Forward.path_metric env trace else infinity
  end

let underlay_metric t a b = underlay_metric_env (Service.env t.service) a b

let add_tunnel t kind a b =
  let ia = Hashtbl.find t.index a and ib = Hashtbl.find t.index b in
  if ia <> ib && not (Graph.has_edge t.graph ia ib) then begin
    let m = underlay_metric t a b in
    if m < infinity then begin
      Graph.add_edge t.graph ia ib (Float.max m 0.001);
      t.tunnels <-
        { from_router = a; to_router = b; underlay_metric = m; kind } :: t.tunnels
    end
  end

type discovery = Linkstate_lsdb | Anycast_walk

(* --- intra-domain fallback for DV domains (footnote 2): joiners
   anycast before advertising and link to the closest already-joined
   member, producing a nearest-neighbor join tree --- *)

let build_intra_walk t domain =
  let igp = (Service.env t.service).Forward.igps.(domain) in
  let members = Service.members_in t.service ~domain in
  let dist m o = Igp.distance igp ~src:m ~dst:o in
  (* enrollment order = router id order (the order Service enrolls) *)
  let rec join joined = function
    | [] -> ()
    | m :: rest ->
        (match
           List.fold_left
             (fun acc o ->
               let d = dist m o in
               match acc with
               | Some (_, bd) when bd <= d -> acc
               | _ -> if d < infinity then Some (o, d) else acc)
             None joined
         with
        | Some (o, _) -> add_tunnel t `Intra m o
        | None -> () (* first joiner, or unreachable *));
        join (m :: joined) rest
  in
  join [] members

(* --- intra-domain: k closest members, then partition repair --- *)

let build_intra t k domain =
  let igp = (Service.env t.service).Forward.igps.(domain) in
  let members = Service.members_in t.service ~domain in
  let dist m o = Igp.distance igp ~src:m ~dst:o in
  List.iter
    (fun m ->
      let nearest =
        List.filter (fun o -> o <> m) members
        |> List.map (fun o -> (o, dist m o))
        |> List.filter (fun (_, d) -> d < infinity)
        |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
      in
      List.iteri (fun i (o, _) -> if i < k then add_tunnel t `Intra m o) nearest)
    members;
  (* repair: the member subgraph of this domain must be one component *)
  let nodes = List.filter_map (fun m -> index_of t m) members in
  let rec repair () =
    let ids = Graph.component_ids t.graph in
    let comps =
      List.sort_uniq Int.compare (List.map (fun n -> ids.(n)) nodes)
    in
    match comps with
    | [] | [ _ ] -> ()
    | first :: _ ->
        (* cheapest cross pair between component [first] and the rest *)
        let in_first m = ids.(Hashtbl.find t.index m) = first in
        let best = ref None in
        List.iter
          (fun a ->
            if in_first a then
              List.iter
                (fun b ->
                  if not (in_first b) then begin
                    let d = dist a b in
                    match !best with
                    | Some (_, _, bd) when bd <= d -> ()
                    | _ -> if d < infinity then best := Some (a, b, d)
                  end)
                members)
          members;
        (match !best with
        | Some (a, b, _) ->
            add_tunnel t `Intra a b;
            repair ()
        | None -> () (* domain members mutually unreachable: give up *))
  in
  repair ()

(* --- inter-domain: tunnels along business links, then anchoring --- *)

let closest_cross_pair t doms_a doms_b =
  (* cheapest member pair with one side in [doms_a], other in [doms_b] *)
  let in_set doms r =
    let d = (Internet.router (Service.env t.service).Forward.inet r).rdomain in
    List.mem d doms
  in
  let best = ref None in
  Array.iter
    (fun a ->
      if in_set doms_a a then
        Array.iter
          (fun b ->
            if in_set doms_b b then begin
              let d = underlay_metric t a b in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> if d < infinity then best := Some (a, b, d)
            end)
          t.members)
    t.members;
  !best

let build_inter t anchor =
  let env = Service.env t.service in
  let parts = Service.participants t.service in
  (* policy tunnels: linked participant pairs *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Internet.relationship env.Forward.inet ~of_:a ~to_:b <> None
          then
            match closest_cross_pair t [ a ] [ b ] with
            | Some (ra, rb, _) -> add_tunnel t `Inter_policy ra rb
            | None -> ())
        parts)
    parts;
  (* anchoring: every participant domain must reach the anchor on the
     vN-Bone ("connected, directly or indirectly, to the default
     provider"); a stranded domain bootstraps via anycast and tunnels
     its cheapest member pair into the anchor's component *)
  match anchor with
  | None -> ()
  | Some anchor_dom -> (
      match Service.members_in t.service ~domain:anchor_dom with
      | [] -> () (* the anchor has no presence yet; nothing to anchor to *)
      | anchor_member :: _ ->
          let anchor_node = Hashtbl.find t.index anchor_member in
          let rec anchor_all () =
            let ids = Graph.component_ids t.graph in
            let anchor_comp = ids.(anchor_node) in
            if
              Array.exists
                (fun m -> ids.(Hashtbl.find t.index m) <> anchor_comp)
                t.members
            then begin
              (* cheapest tunnel from any stranded member into the
                 anchor's component; each merge strictly shrinks the
                 number of components, so this terminates *)
              let best = ref None in
              Array.iter
                (fun a ->
                  if ids.(Hashtbl.find t.index a) <> anchor_comp then
                    Array.iter
                      (fun b ->
                        if ids.(Hashtbl.find t.index b) = anchor_comp then begin
                          let d = underlay_metric t a b in
                          match !best with
                          | Some (_, _, bd) when bd <= d -> ()
                          | _ -> if d < infinity then best := Some (a, b, d)
                        end)
                      t.members)
                t.members;
              match !best with
              | Some (a, b, _) ->
                  add_tunnel t `Inter_bootstrap a b;
                  anchor_all ()
              | None -> () (* underlay cannot reach the anchor: give up *)
            end
          in
          anchor_all ())

let build ?(k = 2) ?(anchored = true) ?(discovery = Linkstate_lsdb) service =
  let members = Array.of_list (Service.members service) in
  let index = Hashtbl.create (Array.length members) in
  Array.iteri (fun i r -> Hashtbl.replace index r i) members;
  let anchor =
    match Service.strategy service with
    | Service.Option2 { default_domain } -> Some default_domain
    | Service.Gia { home_domain; _ } -> Some home_domain
    | Service.Option1 -> (
        match Service.participants service with [] -> None | d :: _ -> Some d)
  in
  let t =
    {
      service;
      members;
      index;
      graph = Graph.create ~n:(Array.length members);
      tunnels = [];
      anchor;
      spt_cache = Hashtbl.create 16;
    }
  in
  let igps = (Service.env service).Forward.igps in
  let intra d =
    (* the LSDB rule needs the member set, which only link-state
       reveals; distance-vector domains fall back to the anycast walk
       regardless of the requested discovery (footnote 2) *)
    match discovery with
    | Anycast_walk -> build_intra_walk t d
    | Linkstate_lsdb ->
        if Igp.members_known igps.(d) then build_intra t k d
        else build_intra_walk t d
  in
  List.iter intra (Service.participants service);
  build_inter t (if anchored then anchor else None);
  t

let is_connected t = Graph.is_connected t.graph

let spt t node =
  match Hashtbl.find_opt t.spt_cache node with
  | Some s -> s
  | None ->
      let s = Spt.dijkstra t.graph ~src:node in
      Hashtbl.replace t.spt_cache node s;
      s

let vn_distance t a b =
  match (index_of t a, index_of t b) with
  | Some ia, Some ib -> Spt.distance (spt t ia) ib
  | _ -> infinity

let vn_path t a b =
  match (index_of t a, index_of t b) with
  | Some ia, Some ib ->
      Option.map (List.map (fun n -> t.members.(n))) (Spt.path (spt t ia) ib)
  | _ -> None

let add_manual_tunnel t a b =
  (match (index_of t a, index_of t b) with
  | Some _, Some _ -> ()
  | _ -> invalid_arg "Fabric.add_manual_tunnel: router is not a member");
  if a = b then invalid_arg "Fabric.add_manual_tunnel: same router";
  Hashtbl.reset t.spt_cache;
  add_tunnel t `Manual a b

let vn_hop_distance t a b =
  match (index_of t a, index_of t b) with
  | Some ia, Some ib ->
      let level = ref None in
      let seen = Array.make (Array.length t.members) false in
      let q = Queue.create () in
      seen.(ia) <- true;
      Queue.add (ia, 0) q;
      while !level = None && not (Queue.is_empty q) do
        let u, d = Queue.pop q in
        if u = ib then level := Some d
        else
          Graph.iter_neighbors t.graph u (fun v _ ->
              if not seen.(v) then begin
                seen.(v) <- true;
                Queue.add (v, d + 1) q
              end)
      done;
      !level
  | _ -> None

(* --- liveness: probing and re-anchoring after member deaths --- *)

let probe_tunnels t ~alive =
  let dead tn = not (alive tn.from_router) || not (alive tn.to_router) in
  let removed = List.filter dead t.tunnels in
  List.iter
    (fun tn ->
      let ia = Hashtbl.find t.index tn.from_router
      and ib = Hashtbl.find t.index tn.to_router in
      if Graph.has_edge t.graph ia ib then Graph.remove_edge t.graph ia ib)
    removed;
  t.tunnels <- List.filter (fun tn -> not (dead tn)) t.tunnels;
  match removed with
  | [] -> 0
  | _ ->
      Hashtbl.reset t.spt_cache;
      List.length removed

let reanchor t ~alive =
  let live_members = List.filter alive (Array.to_list t.members) in
  let added = ref 0 in
  (match live_members with
  | [] -> ()
  | first_live :: _ ->
      (* re-anchor to the default provider's surviving presence; if the
         provider lost all members, the first survivor's component
         stands in so the living vN-Bone still becomes one piece *)
      let anchor_member =
        match t.anchor with
        | Some dom -> (
            match List.filter alive (Service.members_in t.service ~domain:dom) with
            | m :: _ -> m
            | [] -> first_live)
        | None -> first_live
      in
      let anchor_node = Hashtbl.find t.index anchor_member in
      let rec go () =
        let ids = Graph.component_ids t.graph in
        let anchor_comp = ids.(anchor_node) in
        let stranded =
          List.filter
            (fun m -> ids.(Hashtbl.find t.index m) <> anchor_comp)
            live_members
        in
        match stranded with
        | [] -> ()
        | _ -> (
            (* cheapest live pair bridging into the anchor's component;
               each merge shrinks the component count, so this
               terminates *)
            let best = ref None in
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    if ids.(Hashtbl.find t.index b) = anchor_comp then begin
                      let d = underlay_metric t a b in
                      match !best with
                      | Some (_, _, bd) when bd <= d -> ()
                      | _ -> if d < infinity then best := Some (a, b, d)
                    end)
                  live_members)
              stranded;
            match !best with
            | Some (a, b, _) ->
                add_tunnel t `Inter_bootstrap a b;
                incr added;
                go ()
            | None -> () (* survivors mutually unreachable: give up *))
      in
      go ());
  if !added > 0 then Hashtbl.reset t.spt_cache;
  !added

let mean_vn_stretch t =
  let n = Array.length t.members in
  let acc = ref 0.0 and count = ref 0 in
  for i = 0 to n - 1 do
    let spt_i = spt t i in
    for j = i + 1 to n - 1 do
      let vn = Spt.distance spt_i j in
      let direct = underlay_metric t t.members.(i) t.members.(j) in
      if vn < infinity && direct > 0.0 && direct < infinity then begin
        acc := !acc +. (vn /. direct);
        incr count
      end
    done
  done;
  if !count = 0 then nan else !acc /. float_of_int !count
