(** vN-Bone topology construction (paper §3.3.1).

    The vN-Bone is the virtual IPvN network overlaid on the IPv(N-1)
    substrate: its nodes are the IPvN routers (the anycast-group
    members), its edges are tunnels whose weight is the metric of the
    underlying IPv4 path.

    Construction follows the paper:
    - {e intra-domain}: every IPvN router picks its [k] closest IPvN
      domain-mates as neighbors (closeness from the IGP); partitions
      are "easily detected and repaired because every router has
      complete knowledge of all other IPvN routers" — we reconnect
      components through their closest cross pair.
    - {e inter-domain}: participant domains that share a (business)
      link set up a tunnel between their closest member pair. A domain
      left unconnected bootstraps through anycast: it tunnels to the
      nearest foreign member — and every domain is anchored
      (directly or indirectly) to the {e anchor} (the default provider
      under Option 2, the first participant otherwise) so the
      inter-domain vN-Bone cannot partition. *)

type tunnel = {
  from_router : int;
  to_router : int;
  underlay_metric : float;
  kind : [ `Intra | `Inter_policy | `Inter_bootstrap | `Manual ];
}

type t

type discovery =
  | Linkstate_lsdb
      (** members read the full member set out of the LSDB and apply
          the k-closest rule — the paper's default assumption *)
  | Anycast_walk
      (** the footnote-2 fallback for domains on unmodified
          distance-vector IGPs: members cannot enumerate each other, so
          each joiner anycasts {e before} advertising (footnote 4) and
          tunnels to the closest already-joined member, yielding a
          nearest-neighbor join tree *)

val build : ?k:int -> ?anchored:bool -> ?discovery:discovery -> Anycast.Service.t -> t
(** Construct the vN-Bone for the current deployment. [k] defaults to
    2 and only applies under [Linkstate_lsdb] discovery (the default).
    [anchored] (default true) controls the paper's partition-prevention
    rule — "every domain ensure[s] that it is connected ... to the
    default provider"; disabling it is the ablation of experiment E7.
    Re-call after deployment changes (construction is cheap at
    simulation scale). *)

val service : t -> Anycast.Service.t
val members : t -> int array
(** Member router ids, ascending; node [i] of {!graph} is
    [members.(i)]. *)

val graph : t -> Topology.Graph.t
val index_of : t -> int -> int option
(** vN node index of a router id, when it is a member. *)

val tunnels : t -> tunnel list
(** All vN edges with their provenance. *)

val add_manual_tunnel : t -> int -> int -> unit
(** Hand-configured tunnel between two member routers — the MBone
    style the paper expects many ISPs to keep using ("many ISPs might,
    as in the past, simply choose to configure their networks by
    hand"). Weighted by the measured underlay metric like any other
    tunnel; no-op when the pair is already linked.
    @raise Invalid_argument when either router is not a member. *)

val anchor_domain : t -> int option
(** The domain every participant is anchored to; [None] when there are
    no members. *)

val is_connected : t -> bool
(** Whether the whole vN-Bone is one component (vacuously true when
    empty). *)

val vn_distance : t -> int -> int -> float
(** Metric of the cheapest vN-Bone path between two member routers
    (sums of tunnel underlay metrics); [infinity] when disconnected or
    not members. *)

val vn_path : t -> int -> int -> int list option
(** Member-router sequence of the cheapest vN-Bone path, inclusive. *)

val vn_hop_distance : t -> int -> int -> int option
(** Minimum number of vN-Bone tunnel hops between two member routers
    (BFS, ignoring tunnel metrics); [None] when disconnected or not
    members. This is the hop count BGPvN's policy metric charges for. *)

val underlay_metric : t -> int -> int -> float
(** Metric of the IPv4 path between two routers as the data plane
    would forward it; [infinity] when undeliverable. *)

val probe_tunnels : t -> alive:(int -> bool) -> int
(** Tunnel liveness: every tunnel with a dead endpoint (per the
    [alive] predicate over member router ids) fails its probe and is
    torn down — edge removed, record dropped. Returns the number
    removed. A death here means the IPvN process, not the underlying
    IPv4 router: the substrate keeps forwarding. Follow with
    {!reanchor}, which is the repair half of §3.3's claim that
    partitions are "easily detected and repaired". *)

val reanchor : t -> alive:(int -> bool) -> int
(** The paper's partition repair, restricted to survivors: every live
    member must again reach the anchor (default-provider) component,
    so stranded components are merged in through their cheapest live
    cross pair, as bootstrap tunnels. When the anchor domain itself
    lost every member, the first surviving member's component stands
    in. Returns the number of tunnels added. *)

val mean_vn_stretch : t -> float
(** Congruence of the vN-Bone with the physical topology (§3.3.1):
    mean over member pairs of [vn_distance a b / underlay_metric a b].
    1.0 means every vN-Bone path is as good as native IPv4 between the
    same routers; [nan] with fewer than two mutually reachable
    members. *)
