module Internet = Topology.Internet
module Graph = Topology.Graph
module Forward = Simcore.Forward
module Service = Anycast.Service
module Prefix = Netcore.Prefix

type dest = Vn_domain of int | External of Prefix.t

let compare_dest a b =
  match (a, b) with
  | Vn_domain x, Vn_domain y -> Int.compare x y
  | Vn_domain _, External _ -> -1
  | External _, Vn_domain _ -> 1
  | External p, External q -> Prefix.compare p q

type route = {
  rdest : dest;
  cost : float;
  next : int option;
  egress : int;
  vn_hops : int;
}

type t = {
  fabric : Fabric.t;
  alpha : float;
  tables : (dest, route) Hashtbl.t array;  (* per fabric node *)
  mutable external_origins : (int * Prefix.t * float) list;
      (* fabric node, prefix, exit cost *)
  mutable alive : int -> bool;  (* member router id -> process is up *)
}

let alpha t = t.alpha
let fabric t = t.fabric

let node_of t member =
  match Fabric.index_of t.fabric member with
  | Some n -> n
  | None -> invalid_arg "Bgpvn: router is not a vN-Bone member"

let create ?(alpha = 0.5) fabric =
  let n = Array.length (Fabric.members fabric) in
  {
    fabric;
    alpha;
    tables = Array.init n (fun _ -> Hashtbl.create 8);
    external_origins = [];
    alive = (fun _ -> true);
  }

let originate_external t ~member ~prefix ~exit_cost =
  if exit_cost < 0.0 then invalid_arg "Bgpvn.originate_external: negative cost";
  let node = node_of t member in
  let entry = (node, prefix, exit_cost) in
  if not (List.mem entry t.external_origins) then
    t.external_origins <- entry :: t.external_origins

(* deterministic preference: cheaper cost, then lower egress id *)
let better a b =
  a.cost < b.cost || (Float.equal a.cost b.cost && a.egress < b.egress)

let install t node r =
  match Hashtbl.find_opt t.tables.(node) r.rdest with
  | Some cur when not (better r cur) -> false
  | _ ->
      Hashtbl.replace t.tables.(node) r.rdest r;
      true

let step t =
  let members = Fabric.members t.fabric in
  let inet = (Service.env (Fabric.service t.fabric)).Forward.inet in
  let changed = ref false in
  (* 1. originations (dead members originate nothing) *)
  Array.iteri
    (fun node member ->
      if t.alive member then begin
        let dom = (Internet.router inet member).Internet.rdomain in
        let r =
          {
            rdest = Vn_domain dom;
            cost = 0.0;
            next = None;
            egress = member;
            vn_hops = 0;
          }
        in
        if install t node r then changed := true
      end)
    members;
  List.iter
    (fun (node, prefix, exit_cost) ->
      if t.alive members.(node) then begin
        let r =
          {
            rdest = External prefix;
            cost = exit_cost;
            next = None;
            egress = members.(node);
            vn_hops = 0;
          }
        in
        if install t node r then changed := true
      end)
    t.external_origins;
  (* 2. neighbor exchange from a snapshot *)
  let snapshot = Array.map Hashtbl.copy t.tables in
  let g = Fabric.graph t.fabric in
  Array.iteri
    (fun node member ->
      if t.alive member then
        Graph.iter_neighbors g node (fun nb w ->
            if t.alive members.(nb) then
              Hashtbl.iter
                (fun _dest (r : route) ->
                  let hop_cost =
                    match r.rdest with
                    | Vn_domain _ -> w (* aggregates ride the tunnel metric *)
                    | External _ -> t.alpha (* proxy routes pay the policy weight *)
                  in
                  let candidate =
                    {
                      r with
                      cost = r.cost +. hop_cost;
                      next = Some members.(nb);
                      vn_hops = r.vn_hops + 1;
                    }
                  in
                  if install t node candidate then changed := true)
                snapshot.(nb)))
    members;
  !changed

let converge t =
  let n = Array.length (Fabric.members t.fabric) in
  let dests = n + List.length t.external_origins in
  let limit = (4 * (n + 2) * (dests + 2)) + 16 in
  let rec go rounds =
    if rounds >= limit then rounds else if step t then go (rounds + 1) else rounds
  in
  go 0

(* Dead speakers lose everything; live speakers must also shed every
   route that leans on dead state, directly or transitively: a
   distance-vector table converges to the true optimum from above, so
   once no remaining entry underestimates, plain relaxation
   ({!converge}) finishes the repair. *)
let fail_members t ~alive =
  t.alive <- alive;
  let members = Fabric.members t.fabric in
  let g = Fabric.graph t.fabric in
  Array.iteri
    (fun node member -> if not (alive member) then Hashtbl.reset t.tables.(node))
    members;
  let supported node (r : route) =
    match r.next with
    | None -> alive r.egress
    | Some m -> (
        alive m && alive r.egress
        &&
        match Fabric.index_of t.fabric m with
        | None -> false
        | Some nb -> (
            match Graph.edge_weight g node nb with
            | None -> false (* the tunnel is gone *)
            | Some w -> (
                match Hashtbl.find_opt t.tables.(nb) r.rdest with
                | None -> false
                | Some r' ->
                    (* the next hop must still justify our cost: an
                       underestimate would anchor the table below the
                       reachable optimum forever *)
                    let hop =
                      match r.rdest with Vn_domain _ -> w | External _ -> t.alpha
                    in
                    r'.cost +. hop <= r.cost)))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun node member ->
        if alive member then begin
          let doomed =
            Hashtbl.fold
              (fun dest r acc -> if supported node r then acc else dest :: acc)
              t.tables.(node) []
            |> List.sort compare_dest
          in
          match doomed with
          | [] -> ()
          | _ ->
              changed := true;
              List.iter (fun dest -> Hashtbl.remove t.tables.(node) dest) doomed
        end)
      members
  done

let route t ~at dest =
  match Fabric.index_of t.fabric at with
  | None -> None
  | Some node -> Hashtbl.find_opt t.tables.(node) dest

let routes t ~at =
  match Fabric.index_of t.fabric at with
  | None -> []
  | Some node ->
      Hashtbl.fold (fun _ r acc -> r :: acc) t.tables.(node) []
      (* destinations are the table keys, so they are unique and an
         order on [rdest] alone is total over one table *)
      |> List.sort (fun a b -> compare_dest a.rdest b.rdest)

let table_size t ~at =
  match Fabric.index_of t.fabric at with
  | None -> 0
  | Some node -> Hashtbl.length t.tables.(node)
