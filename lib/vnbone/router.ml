module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Bgp = Interdomain.Bgp
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4

type strategy = Exit_early | Bgp_aware | Proxy | Host_advertised

let strategy_to_string = function
  | Exit_early -> "exit-early"
  | Bgp_aware -> "bgpv(n-1)-aware"
  | Proxy -> "advertise-by-proxy"
  | Host_advertised -> "host-advertised"

type mode = Oracle | Protocol

type t = {
  fabric : Fabric.t;
  proxy_alpha : float;
  rmode : mode;
  registrations : (int, int) Hashtbl.t;  (* endhost -> advertising member *)
  mutable speaker : Bgpvn.t option;  (* lazily created BGPvN instance *)
  proxied : (Netcore.Prefix.t, unit) Hashtbl.t;  (* prefixes already proxy-advertised *)
}

let create ?(proxy_alpha = 0.5) ?(mode = Oracle) fabric =
  {
    fabric;
    proxy_alpha;
    rmode = mode;
    registrations = Hashtbl.create 16;
    speaker = None;
    proxied = Hashtbl.create 8;
  }

let fabric t = t.fabric
let mode t = t.rmode

let protocol t =
  match t.speaker with
  | Some s -> s
  | None ->
      let s = Bgpvn.create ~alpha:t.proxy_alpha t.fabric in
      ignore (Bgpvn.converge s);
      t.speaker <- Some s;
      s

let env t = Service.env (Fabric.service t.fabric)
let domain_of t r = (Internet.router (env t).Forward.inet r).rdomain

let egress_to_vn_domain t ~ingress ~domain =
  match t.rmode with
  | Protocol ->
      Option.map
        (fun (r : Bgpvn.route) -> r.Bgpvn.egress)
        (Bgpvn.route (protocol t) ~at:ingress (Bgpvn.Vn_domain domain))
  | Oracle ->
      let candidates = Service.members_in (Fabric.service t.fabric) ~domain in
      List.fold_left
        (fun acc m ->
          let d = Fabric.vn_distance t.fabric ingress m in
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> if d < infinity then Some (m, d) else acc)
        None candidates
      |> Option.map fst

let exit_cost t ~member ~dest =
  let probe = Packet.make_data ~src:Ipv4.any ~dst:dest "exit-probe" in
  let trace = Forward.forward (env t) probe ~entry:member in
  if Forward.delivered trace then Forward.path_metric (env t) trace else infinity

let domain_path_length t ~member ~dest =
  Option.map List.length
    (Bgp.domain_path (env t).Forward.bgp ~src:(domain_of t member) dest)

let reachable_members t ~ingress =
  Array.to_list (Fabric.members t.fabric)
  |> List.filter (fun m -> Fabric.vn_distance t.fabric ingress m < infinity)

(* --- host-advertised registrations --- *)

let register_endhost t ~endhost =
  let service = Fabric.service t.fabric in
  match
    (Anycast.Service.resolve_from_endhost service ~endhost).Forward.outcome
  with
  | Forward.Router_accepted member ->
      Hashtbl.replace t.registrations endhost member;
      Some member
  | Forward.Endhost_accepted _ | Forward.Dropped _ -> None

let registered_advertiser t ~endhost = Hashtbl.find_opt t.registrations endhost
let deregister_endhost t ~endhost = Hashtbl.remove t.registrations endhost

let advertiser_alive t member =
  List.mem member (Anycast.Service.members (Fabric.service t.fabric))

let registration_stale t ~endhost =
  match registered_advertiser t ~endhost with
  | Some member -> not (advertiser_alive t member)
  | None -> false

let egress_for t ~strategy ~ingress ~dest =
  match Fabric.index_of t.fabric ingress with
  | None -> None
  | Some _ -> (
      match strategy with
      | Exit_early -> Some ingress
      | Host_advertised -> (
          (* the route exists only while the advertiser is a live
             member: fate-sharing between host and advertisement *)
          let inet = (env t).Forward.inet in
          match Internet.endhost_of_addr inet dest with
          | None -> Some ingress
          | Some h -> (
              match registered_advertiser t ~endhost:h.Internet.hid with
              | None -> Some ingress (* unregistered: fall back *)
              | Some advertiser ->
                  if advertiser_alive t advertiser then Some advertiser
                  else None (* stale route: black-holed *)))
      | Bgp_aware ->
          (* the member whose domain is AS-path-closest to the
             destination; ties break toward the vN-cheaper member *)
          let score m =
            match domain_path_length t ~member:m ~dest with
            | None -> None
            | Some l -> Some (float_of_int l, Fabric.vn_distance t.fabric ingress m)
          in
          (* lexicographic <= on (domain-path length, vN distance),
             spelled out: the polymorphic order on float pairs is not
             nan-safe (poly-compare) *)
          let key_le (a1, a2) (b1, b2) =
            a1 < b1 || (Float.equal a1 b1 && a2 <= b2)
          in
          let best =
            List.fold_left
              (fun acc m ->
                match score m with
                | None -> acc
                | Some key -> (
                    match acc with
                    | Some (_, bkey) when key_le bkey key -> acc
                    | _ -> Some (m, key)))
              None
              (reachable_members t ~ingress)
          in
          (match best with Some (m, _) -> Some m | None -> Some ingress)
      | Proxy -> (
          match t.rmode with
          | Protocol -> (
              (* run the real thing: members proxy-advertise the
                 destination's covering prefix into BGPvN, then the
                 ingress routes on its table *)
              let inet = (env t).Forward.inet in
              match Internet.domain_of_addr inet dest with
              | None -> Some ingress
              | Some dd ->
                  let prefix = Netcore.Addressing.domain_prefix dd in
                  let speaker = protocol t in
                  if not (Hashtbl.mem t.proxied prefix) then begin
                    Hashtbl.replace t.proxied prefix ();
                    Array.iter
                      (fun m ->
                        match domain_path_length t ~member:m ~dest with
                        | Some l ->
                            Bgpvn.originate_external speaker ~member:m ~prefix
                              ~exit_cost:(float_of_int l)
                        | None -> ())
                      (Fabric.members t.fabric);
                    ignore (Bgpvn.converge speaker)
                  end;
                  (match Bgpvn.route speaker ~at:ingress (Bgpvn.External prefix) with
                  | Some r -> Some r.Bgpvn.egress
                  | None -> Some ingress))
          | Oracle ->
              (* the same combined metric, computed centrally:
                 discounted vN-Bone hops plus the AS-level exit
                 distance each member would advertise *)
              let best =
                List.fold_left
                  (fun acc m ->
                    match
                      ( Fabric.vn_hop_distance t.fabric ingress m,
                        domain_path_length t ~member:m ~dest )
                    with
                    | Some vh, Some xl ->
                        let total =
                          (t.proxy_alpha *. float_of_int vh) +. float_of_int xl
                        in
                        (match acc with
                        | Some (_, bt) when bt <= total -> acc
                        | _ -> Some (m, total))
                    | _ -> acc)
                  None
                  (reachable_members t ~ingress)
              in
              (match best with Some (m, _) -> Some m | None -> Some ingress)))
