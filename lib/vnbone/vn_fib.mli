(** Compiled IPvN forwarding tables for vN-Bone members.

    The IPvN analogue of {!Simcore.Fib}: each member's BGPvN (§3.3.2)
    routes ({!Bgpvn}) are materialized into a table keyed by destination, and
    vN packets can be forwarded hop by hop across tunnels using only
    local tables — the way member routers would actually move IPvN
    traffic. The test-suite proves hop-by-hop forwarding reaches the
    same egress as the path-oracle transport. *)

type vn_action =
  | Vn_local  (** this member is the route's egress *)
  | Vn_next of int  (** forward through the tunnel to this member *)

type t

val compile : Bgpvn.t -> t
(** Snapshot every member's table from a converged {!Bgpvn} speaker
    state. *)

val lookup : t -> at:int -> Bgpvn.dest -> vn_action option
(** The member's forwarding decision for a destination; [None] =
    unknown destination.

    @raise Invalid_argument when [at] is not a vN-Bone member (as do
    {!size} and {!walk} for their member arguments). *)

val size : t -> at:int -> int

val walk : t -> from_:int -> Bgpvn.dest -> (int list, string) result
(** Follow the compiled tables hop by hop from a member to the route's
    egress; returns the member sequence (inclusive), or an error on a
    loop, a dead end, or an unknown destination. *)
