(** BGPvN — the routing protocol the IPvN routers actually run over
    the vN-Bone (paper §3.3.2, "routing between IPvN routers").

    The paper assumes "no specific routing algorithm" and uses BGPvN as
    a stand-in name; here it is a distance-vector protocol whose
    speakers are the vN-Bone members and whose links are the tunnels.
    Two address families are carried:

    - {e vN-domain aggregates}: every member originates its own
      domain's IPvN aggregate at cost 0; costs accumulate tunnel
      underlay metrics. This is how packets for provider-addressed
      IPvN destinations find the destination domain.
    - {e external (proxy) prefixes}: advertising-by-proxy (Fig 4) —
      a member originates an IPv(N-1) prefix at its measured exit
      distance; each vN-Bone hop adds the policy weight [alpha]
      (deployers prefer traffic on IPvN), so the protocol converges on
      [min over egress (alpha * vn_hops + exit_cost)].

    {!Router} can route either on this protocol's tables or on its
    centralized oracle; the test-suite proves the two agree. *)

type dest =
  | Vn_domain of int  (** a participant domain's IPvN aggregate *)
  | External of Netcore.Prefix.t  (** an IPv(N-1) prefix, proxy-advertised *)

type route = {
  rdest : dest;
  cost : float;
  next : int option;  (** next-hop member router; [None] at the origin *)
  egress : int;  (** the member where this route leaves the vN-Bone *)
  vn_hops : int;  (** tunnel hops accumulated *)
}

type t

val create : ?alpha:float -> Fabric.t -> t
(** Fresh speaker state over a fabric. Every member's own-domain
    aggregate is originated automatically; call {!converge}. [alpha]
    defaults to 0.5 (same knob as {!Router.create}). *)

val alpha : t -> float
val fabric : t -> Fabric.t

val originate_external : t -> member:int -> prefix:Netcore.Prefix.t -> exit_cost:float -> unit
(** The member proxy-advertises an IPv(N-1) prefix at the given exit
    distance. Takes effect over subsequent {!converge} rounds.
    @raise Invalid_argument when [member] is not a fabric node or the
    cost is negative. *)

val converge : t -> int
(** Synchronous exchange rounds to the fixpoint; returns rounds that
    changed something. *)

val fail_members : t -> alive:(int -> bool) -> unit
(** Member deaths, as tunnel liveness probing reveals them (§3.3: the
    vN-Bone is "easily detected and repaired"). Dead speakers lose
    their tables; live speakers withdraw, to a fixpoint, every route
    whose egress or next hop is dead, whose tunnel is gone, or whose
    cost the next hop no longer justifies (a stale underestimate would
    otherwise anchor the table below reality forever). Dead members
    stop originating. Repair the fabric first
    ({!Fabric.probe_tunnels} then {!Fabric.reanchor}), then call this,
    then {!converge}: distance-vector relaxation from above lands
    exactly on the centralized optimum over the repaired graph — the
    test-suite proves it against the {!Fabric} shortest paths. *)

val route : t -> at:int -> dest -> route option
(** The member's best route for a destination ([None] when unknown or
    [at] is not a member). *)

val routes : t -> at:int -> route list
val table_size : t -> at:int -> int
(** Routes held by one member — BGPvN's per-router state. *)
