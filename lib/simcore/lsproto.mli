(** Message-level link-state protocol.

    {!Routing.Linkstate} computes routes from an assumed-synchronized LSDB;
    this module supplies the dynamics underneath: routers originate
    sequence-numbered LSAs (their links plus the anycast addresses they
    accept, per the paper's §3.2 extension), flood them over links with
    latency on a {!Engine}, and each maintains its own LSDB
    view. The test-suite proves the converged views agree with
    {!Routing.Linkstate}; the E18 experiment measures flooding cost and
    convergence latency. *)

type lsa = {
  origin : int;  (** global router id *)
  seq : int;
  links : (int * float) list;  (** neighbor router id, metric *)
  groups : Netcore.Prefix.t list;  (** anycast groups the origin accepts *)
}

type t
(** Protocol state for the routers of one domain. *)

type stats = {
  messages : int;  (** LSA transmissions on links (retransmits included) *)
  originations : int;
  last_change : float;  (** engine time of the last LSDB update *)
  acks : int;  (** acknowledgement messages sent (E31 overhead) *)
  retransmits : int;  (** unacked LSA transmissions repeated by timer *)
  shed_retries : int;
      (** sends refused by the fabric's capacity budget and re-posted
          with exponential backoff (DESIGN.md §13); acks ride
          [Faults.Keepalive] priority so flooding stays acknowledged
          under overload *)
}

val create :
  ?link_delay:float -> ?faults:Faults.t -> Topology.Internet.t -> domain:int -> t
(** [link_delay] (default 1.0) is the per-hop propagation latency.

    [faults] routes every LSA through a fault fabric (node ids =
    global router ids) and switches on reliable flooding: each
    transmission is acknowledged, and the sender retransmits with
    capped exponential backoff until acked (or a generous attempt cap,
    so the engine drains against a permanently dead neighbor).
    Sequence numbers absorb any reordering, so build the fabric
    without [~fifo]. Crash wipes the victim's LSDB and pending
    retransmits; only its monotonic origination counter survives.
    Restart re-originates and pulls each live neighbor's full LSDB —
    the database-exchange handshake abstracted to its effect. *)

val start : t -> Engine.t -> unit
(** Every router originates its initial LSA at the current engine
    time and flooding begins. Run the engine to propagate. *)

val advertise_anycast : t -> Engine.t -> router:int -> Netcore.Prefix.t -> unit
(** The router re-originates its LSA with the group added (sequence
    number bumped) and floods the update.
    @raise Invalid_argument if the router is outside the domain. *)

val withdraw_anycast : t -> Engine.t -> router:int -> Netcore.Prefix.t -> unit

val link_failed : t -> Engine.t -> int -> int -> unit
(** Both endpoints of a just-removed intra-domain link notice the
    failure, drop the adjacency, and re-originate their LSAs. Call
    {e after} removing the edge from the underlying graph
    ({!Topology.Graph.remove_edge}); run the engine to propagate. SPF
    uses the OSPF two-way check, so a link disappears from routing as
    soon as either flooded LSA omits it.
    @raise Invalid_argument when either router is outside the domain. *)

val link_restored : t -> Engine.t -> int -> int -> unit
(** The inverse of {!link_failed}: call {e after} re-adding the edge
    to the underlying graph ({!Topology.Graph.add_edge}). Both
    endpoints re-form the adjacency and re-originate their LSAs — the
    interface-up event an incident drill's restore phase needs so the
    LSDB view heals along with the topology (§3.3: partitions are
    "easily detected and repaired").
    @raise Invalid_argument when either router is outside the domain. *)

val lsdb_synchronized : t -> bool
(** Whether all routers currently hold identical LSDBs. *)

val stats : t -> stats

val spf : t -> router:int -> Routing.Spt.t
(** Shortest paths computed from {e that router's} current LSDB view
    (node ids are global router ids, as in the underlying graph). *)

val distance_view : t -> router:int -> dst:int -> float
(** Distance to [dst] in the router's current view; [infinity] when
    unknown. *)

val members_view : t -> router:int -> Netcore.Prefix.t -> int list
(** The anycast members of a group as visible in the router's LSDB —
    the property that lets link-state members discover one another. *)
