(** The IPv4 forwarding plane.

    Hop-by-hop forwarding over the router graph, driven by three route
    sources in priority order, mirroring a real FIB:

    + intra-domain anycast routes (the paper's §3.2 redirection
      primitive),
    + the domain's own unicast routes (routers and endhosts of the
      local /16),
    + inter-domain (BGP) routes, resolved through the chosen egress
      border link.

    Forwarding is synchronous and returns the full trace, which the
    experiments mine for path lengths, redirection targets and
    stretch. *)

type env = {
  inet : Topology.Internet.t;
  igps : Routing.Igp.t array;  (** one per domain *)
  bgp : Interdomain.Bgp.t;
}

val make_env :
  ?config:Interdomain.Bgp.config ->
  ?flavor_of:(int -> Routing.Igp.flavor) ->
  Topology.Internet.t ->
  env
(** Compute every domain's IGP ([flavor_of] picks link-state or
    distance-vector per domain; default all link-state), originate all
    domain /16s into BGP and converge it. The result is ready for
    {!forward}. *)

val reconverge : env -> int
(** Re-run BGP to a stable state after originations/withdrawals;
    returns rounds. *)

type drop_reason =
  | Ttl_expired
  | No_route  (** no FIB entry anywhere on the way *)
  | Stuck  (** next hop exists but does not advance (should not happen) *)
  | Link_down
      (** the FIB pointed over a link that is currently down — only the
          fault-aware data path ({!Dataplane.Pump} under a link filter,
          experiment E32) produces this *)
  | Queue_full
      (** droptail loss at a finite-capacity link queue — only the
          capacity-aware data path ({!Dataplane.Pump} with a
          {!Dataplane.Linkq} attached, experiment E36) produces this *)
  | Shed
      (** deliberate load shedding: a data-class packet evicted or
          refused in favour of control traffic under the per-class drop
          precedence (DESIGN.md §13) *)

type outcome =
  | Router_accepted of int  (** packet addressed to this router, or anycast
                                delivery at this group member *)
  | Endhost_accepted of int
  | Dropped of drop_reason

type trace = {
  hops : int list;  (** router ids in forwarding order, first = entry point *)
  outcome : outcome;
}

val hop_count : trace -> int
(** Number of router-to-router transmissions in the trace. *)

val delivered : trace -> bool

val forward : env -> Netcore.Packet.t -> entry:int -> trace
(** Forward a packet hop by hop starting at router [entry] until
    delivery or drop. TTL decrements per hop. *)

val send_from_endhost : env -> Netcore.Packet.t -> endhost:int -> trace
(** Hand the packet to the endhost's access router and forward. The
    access link is not counted as a router hop. *)

val anycast_member_reached : env -> dst:Netcore.Ipv4.t -> entry:int -> int option
(** Convenience: forward a probe to [dst] from [entry] and report the
    router that accepted it, if delivery succeeded. *)

val path_metric : env -> trace -> float
(** Sum of link weights along the trace's hops. *)
