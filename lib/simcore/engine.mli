(** A minimal discrete-event simulation engine.

    Used by the dynamic experiments (§3.2 protocol convergence after
    membership changes, staged deployment, §2.1 adoption dynamics); the
    forwarding plane itself is synchronous and lives in {!Forward}. *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run the callback [delay] time units from now.
    @raise Invalid_argument on negative delays. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run the callback at an absolute time (not before [now]).
    @raise Invalid_argument when the time is in the past. *)

type handle
(** A cancellable reference to one scheduled event — the shape
    protocol timers need (keepalive hold timers, LSA retransmits):
    arm, then disarm when the awaited message arrives. *)

val timer : t -> delay:float -> (t -> unit) -> handle
(** Like {!schedule}, returning a handle that {!cancel} disarms.
    @raise Invalid_argument on negative delays. *)

val cancel : t -> handle -> unit
(** Disarm the timer: a cancelled event never fires and stops counting
    toward {!pending}. No-op when the event already ran or was already
    cancelled. *)

val live : handle -> bool
(** True while the event is still queued (not fired, not cancelled). *)

val step : t -> bool
(** Execute the next event; false when the queue is empty. Events at
    equal times run in scheduling order. *)

val run : ?until:float -> t -> int
(** Drain the queue (or stop once the next event is later than
    [until]); returns the number of events executed. *)

val pending : t -> int
(** Events still queued. *)
