module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Bgp = Interdomain.Bgp
module Prefix = Netcore.Prefix

type stats = {
  updates : int;
  best_changes : int;
  last_change : float;
  keepalives : int;
  resets : int;
  shed_retries : int;
}

(* a candidate route at a domain *)
type cand = { path : int list; pref : int }

type session = {
  peer : int;
  role_of_peer : Relationship.t;
  delay : float;  (* propagation latency of this session *)
  mutable advertised : (Prefix.t * int list) list;
      (* what we last announced to this peer *)
  mutable pending : bool;  (* a flush is scheduled *)
  mutable next_allowed : float;  (* MRAI gate *)
  mutable up : bool;  (* session established (this end's view) *)
  mutable hold_h : Engine.handle option;  (* armed hold timer *)
}

type t = {
  inet : Internet.t;
  config : Bgp.config;
  mrai : float;
  link_delay : float;
  faults : Faults.t option;
  origins : (int, Prefix.t list ref) Hashtbl.t;  (* domain -> originated *)
  rib_in : (int * int * Prefix.t, cand) Hashtbl.t;  (* (domain, peer, prefix) *)
  best : (int * Prefix.t, cand) Hashtbl.t;  (* (domain, prefix) *)
  sessions : session list array;  (* per domain *)
  touched : (int * Prefix.t, unit) Hashtbl.t array;
      (* per domain: prefixes whose export state may have changed,
         keyed by (peer, prefix) — flushed by the MRAI timer *)
  mutable timers_on : bool;
  mutable timers_until : float;  (* keepalives stop here; later holds ignored *)
  mutable hold : float;
  mutable updates : int;
  mutable best_changes : int;
  mutable last_change : float;
  mutable keepalives : int;
  mutable resets : int;
  mutable shed_retries : int;
}

let origin_pref = 4

let alive t d =
  match t.faults with None -> true | Some f -> Faults.node_up f d

let better a b =
  if a.pref <> b.pref then a.pref > b.pref
  else
    let la = List.length a.path and lb = List.length b.path in
    if la <> lb then la < lb else a.path < b.path

let learned_role c =
  if c.pref >= origin_pref then Relationship.Customer
  else if c.pref = Relationship.(local_preference Customer) then Relationship.Customer
  else if c.pref = Relationship.(local_preference Peer) then Relationship.Peer
  else Relationship.Provider

(* the route [d] would export to [s], if any *)
let exportable t d (s : session) prefix =
  match Hashtbl.find_opt t.best (d, prefix) with
  | None -> None
  | Some c ->
      (* the export target's role, seen from the exporter [d], is
         exactly the session's role_of_peer *)
      if
        Relationship.export_allowed ~learned_from:(learned_role c)
          ~to_:s.role_of_peer
        && not (List.mem s.peer c.path)
        && t.config.Bgp.propagate s.peer prefix
      then Some c.path
      else None

(* hand a message to the fabric (or straight to the engine when no
   faults are configured); false = the transport visibly failed.
   A [Shed] verdict is overload, not failure: the channel is alive and
   the fabric just refused this window's budget, so instead of a
   session reset we re-post after an exponential backoff (doubling
   from one session delay), giving up — and only then treating it as a
   transport failure — after [max_shed_retries] refusals. *)
let max_shed_retries = 8

(* [still_wanted] is re-checked before every re-post: an update retry
   carries the advertisement captured at flush time, and replaying it
   after a newer flush advertised something else would let the stale
   path land second and overwrite the fresh one. [on_give_up] runs
   when a retry exhausts the budget (or the retried transport visibly
   fails) — the async analogue of [post] returning [false] to its
   original caller, which by then has long returned. *)
let rec post ?(prio = Faults.Bulk) ?(attempt = 0)
    ?(still_wanted = fun () -> true) ?on_give_up t engine d (s : session)
    action =
  match t.faults with
  | None ->
      Engine.schedule engine ~delay:s.delay action;
      true
  | Some f -> (
      match
        Faults.send ~prio f engine ~src:d ~dst:s.peer ~delay:s.delay action
      with
      | Faults.Sent -> true
      | Faults.Shed ->
          if attempt >= max_shed_retries then false
          else begin
            t.shed_retries <- t.shed_retries + 1;
            let backoff = s.delay *. Float.of_int (1 lsl attempt) in
            Engine.schedule engine ~delay:backoff (fun engine ->
                if alive t d && s.up && still_wanted () then
                  if
                    not
                      (post ~prio ~attempt:(attempt + 1) ~still_wanted
                         ?on_give_up t engine d s action)
                  then
                    match on_give_up with
                    | Some give_up -> give_up engine
                    | None -> ());
            true
          end
      | Faults.Lost | Faults.Cut | Faults.Dead -> false)

let rec recompute_best t engine d prefix =
  (* candidates: own origination + rib_in *)
  let own =
    match Hashtbl.find_opt t.origins d with
    | Some ps when List.exists (Prefix.equal prefix) !ps ->
        Some { path = [ d ]; pref = origin_pref }
    | _ -> None
  in
  let cands =
    List.fold_left
      (fun acc (s : session) ->
        match Hashtbl.find_opt t.rib_in (d, s.peer, prefix) with
        | Some c when not (List.mem d c.path) ->
            { path = d :: c.path; pref = Relationship.local_preference s.role_of_peer }
            :: acc
        | _ -> acc)
      (match own with Some c -> [ c ] | None -> [])
      t.sessions.(d)
  in
  let new_best =
    List.fold_left
      (fun acc c ->
        match acc with Some b when not (better c b) -> acc | _ -> Some c)
      None cands
  in
  let old_best = Hashtbl.find_opt t.best (d, prefix) in
  let cand_equal a b =
    a.pref = b.pref && List.equal Int.equal a.path b.path
  in
  if not (Option.equal cand_equal new_best old_best) then begin
    (match new_best with
    | Some c -> Hashtbl.replace t.best (d, prefix) c
    | None -> Hashtbl.remove t.best (d, prefix));
    t.best_changes <- t.best_changes + 1;
    t.last_change <- Engine.now engine;
    (* export state toward every session may have changed *)
    List.iter (fun s -> mark_touched t engine d s prefix) t.sessions.(d)
  end

and mark_touched t engine d (s : session) prefix =
  Hashtbl.replace t.touched.(d) (s.peer, prefix) ();
  if not s.pending then begin
    s.pending <- true;
    let now = Engine.now engine in
    let at = Float.max (now +. 0.001) s.next_allowed in
    Engine.schedule_at engine ~time:at (fun engine -> flush t engine d s)
  end

and flush t engine d (s : session) =
  s.pending <- false;
  if not (alive t d) then ()
  else begin
    s.next_allowed <- Engine.now engine +. t.mrai;
    (* collect this session's touched prefixes *)
    let mine =
      Hashtbl.fold
        (fun (peer, p) () acc -> if peer = s.peer then p :: acc else acc)
        t.touched.(d) []
      |> List.sort Prefix.compare
    in
    List.iter (fun p -> Hashtbl.remove t.touched.(d) (s.peer, p)) mine;
    if s.up then begin
      let failed = ref false in
      List.iter
        (fun prefix ->
          if not !failed then
            let now_export = exportable t d s prefix in
            let was = List.assoc_opt prefix s.advertised in
            match (now_export, was) with
            | Some path, Some old when List.equal Int.equal old path ->
                () (* no change *)
            | Some path, _ ->
                s.advertised <-
                  (prefix, path) :: List.remove_assoc prefix s.advertised;
                t.updates <- t.updates + 1;
                let still_wanted () =
                  match List.assoc_opt prefix s.advertised with
                  | Some cur -> List.equal Int.equal cur path
                  | None -> false
                in
                if
                  not
                    (post ~still_wanted
                       ~on_give_up:(fun engine -> transport_failure t engine d s)
                       t engine d s
                       (fun engine ->
                         receive t engine ~at:s.peer ~from:d ~prefix (Some path)))
                then failed := true
            | None, Some _ ->
                s.advertised <- List.remove_assoc prefix s.advertised;
                t.updates <- t.updates + 1;
                let still_wanted () =
                  Option.is_none (List.assoc_opt prefix s.advertised)
                in
                if
                  not
                    (post ~still_wanted
                       ~on_give_up:(fun engine -> transport_failure t engine d s)
                       t engine d s
                       (fun engine ->
                         receive t engine ~at:s.peer ~from:d ~prefix None))
                then failed := true
            | None, None -> ())
        mine
      (* the rest of the batch is subsumed by the full re-advertisement
         the session reset triggers *);
      if !failed then transport_failure t engine d s
    end
    (* session down: the batch is dropped — re-establishment replays the
       whole table, and the reset already purged the peer's rib_in *)
  end

and receive t engine ~at ~from ~prefix update =
  heard t engine ~at ~from;
  (match update with
  | Some path ->
      Hashtbl.replace t.rib_in (at, from, prefix) { path; pref = 0 }
  | None -> Hashtbl.remove t.rib_in (at, from, prefix));
  recompute_best t engine at prefix

(* any message from [from] proves the peer is alive: refresh the hold
   timer and (re-)establish the session if it was down *)
and heard t engine ~at ~from =
  match List.find_opt (fun (s : session) -> s.peer = from) t.sessions.(at) with
  | None -> ()
  | Some s ->
      if t.timers_on then begin
        (match s.hold_h with Some h -> Engine.cancel engine h | None -> ());
        s.hold_h <-
          Some
            (Engine.timer engine ~delay:t.hold (fun engine ->
                 hold_expired t engine at s))
      end;
      if not s.up then establish t engine at s

and establish t engine d s =
  s.up <- true;
  full_readvertise t engine d s

(* a fresh session starts from nothing: replay the entire table *)
and full_readvertise t engine d s =
  let ps =
    Hashtbl.fold (fun (dd, p) _ acc -> if dd = d then p :: acc else acc) t.best []
    |> List.sort Prefix.compare
  in
  List.iter (fun p -> mark_touched t engine d s p) ps

and hold_expired t engine d s =
  s.hold_h <- None;
  (* holds that fire after the keepalive horizon are not evidence of a
     dead peer — the hellos simply stopped — so ignore them *)
  if Engine.now engine <= t.timers_until && alive t d then
    reset_half t engine d s

(* tear down this end of the session: forget what we told the peer and
   what it told us.  Without keepalive machinery there is no hello
   exchange to come back up, so resync immediately instead. *)
and reset_half t engine d (s : session) =
  t.resets <- t.resets + 1;
  s.advertised <- [];
  (match s.hold_h with Some h -> Engine.cancel engine h | None -> ());
  s.hold_h <- None;
  drop_learned t engine d s.peer;
  if t.timers_on then s.up <- false else establish t engine d s

and drop_learned t engine d peer =
  let ps =
    Hashtbl.fold
      (fun (dd, pp, p) _ acc -> if dd = d && pp = peer then p :: acc else acc)
      t.rib_in []
    |> List.sort Prefix.compare
  in
  List.iter (fun p -> Hashtbl.remove t.rib_in (d, peer, p)) ps;
  List.iter (fun p -> recompute_best t engine d p) ps

(* the transport under a session visibly failed (TCP reset): both ends
   drop the session state, exactly like BGP's session reset *)
and transport_failure t engine d (s : session) =
  let already_torn_down =
    t.timers_on && (not s.up)
    && (match s.advertised with [] -> true | _ -> false)
  in
  if not already_torn_down then begin
    reset_half t engine d s;
    if alive t s.peer then
      match
        List.find_opt (fun (s2 : session) -> s2.peer = d) t.sessions.(s.peer)
      with
      | Some s2 -> reset_half t engine s.peer s2
      | None -> ()
  end

(* crash: all soft state is gone; origins survive (configuration) *)
let wipe t engine d =
  let bests =
    Hashtbl.fold (fun (dd, p) _ acc -> if dd = d then p :: acc else acc) t.best []
    |> List.sort Prefix.compare
  in
  List.iter (fun p -> Hashtbl.remove t.best (d, p)) bests;
  let learned =
    Hashtbl.fold
      (fun (dd, pp, p) _ acc -> if dd = d then (pp, p) :: acc else acc)
      t.rib_in []
    |> List.sort (fun (a, pa) (b, pb) ->
           if a <> b then Int.compare a b else Prefix.compare pa pb)
  in
  List.iter (fun (pp, p) -> Hashtbl.remove t.rib_in (d, pp, p)) learned;
  Hashtbl.reset t.touched.(d);
  List.iter
    (fun (s : session) ->
      s.advertised <- [];
      s.up <- false;
      s.pending <- false;
      (match s.hold_h with Some h -> Engine.cancel engine h | None -> ());
      s.hold_h <- None)
    t.sessions.(d)

(* restart: re-originate from configuration; every peer must restart
   its session half too — the old TCP connections died with us *)
let revive t engine d =
  (match Hashtbl.find_opt t.origins d with
  | Some ps ->
      List.iter
        (fun p -> recompute_best t engine d p)
        (List.sort Prefix.compare !ps)
  | None -> ());
  List.iter
    (fun (s : session) ->
      (if alive t s.peer then
         match
           List.find_opt (fun (s2 : session) -> s2.peer = d) t.sessions.(s.peer)
         with
         | Some s2 -> reset_half t engine s.peer s2
         | None -> ());
      if not t.timers_on then establish t engine d s)
    t.sessions.(d)

let create ?(mrai = 2.0) ?(link_delay = 0.1) ?(jitter = 0.0)
    ?(config = Bgp.default_config) ?faults inet =
  let n = Internet.num_domains inet in
  let rng = Topology.Rng.create 97L in
  let t =
    {
      inet;
      config;
      mrai;
      link_delay;
      faults;
      origins = Hashtbl.create 8;
      rib_in = Hashtbl.create 64;
      best = Hashtbl.create 64;
      sessions =
        Array.init n (fun d ->
            List.map
              (fun (peer, role_of_peer) ->
                {
                  peer;
                  role_of_peer;
                  delay =
                    link_delay *. (1.0 +. (jitter *. Topology.Rng.float rng 1.0));
                  advertised = [];
                  pending = false;
                  next_allowed = 0.0;
                  up = true;
                  hold_h = None;
                })
              (Internet.neighbor_domains inet d));
      touched = Array.init n (fun _ -> Hashtbl.create 8);
      timers_on = false;
      timers_until = 0.0;
      hold = 0.0;
      updates = 0;
      best_changes = 0;
      last_change = 0.0;
      keepalives = 0;
      resets = 0;
      shed_retries = 0;
    }
  in
  (match faults with
  | Some f ->
      Faults.on_crash f (fun engine c -> if c >= 0 && c < n then wipe t engine c);
      Faults.on_restart f (fun engine c ->
          if c >= 0 && c < n then revive t engine c)
  | None -> ());
  t

let enable_timers ?(keepalive = 1.0) ?(hold = 3.5) t engine ~until =
  if keepalive <= 0.0 then invalid_arg "Bgpdyn.enable_timers: keepalive <= 0";
  if hold <= keepalive then
    invalid_arg "Bgpdyn.enable_timers: hold must exceed keepalive";
  t.timers_on <- true;
  t.timers_until <- until;
  t.hold <- hold;
  let n = Array.length t.sessions in
  let rec tick time =
    if time <= until then
      Engine.schedule_at engine ~time (fun engine ->
          for d = 0 to n - 1 do
            if alive t d then
              List.iter
                (fun (s : session) ->
                  t.keepalives <- t.keepalives + 1;
                  if
                    not
                      (post ~prio:Faults.Keepalive t engine d s (fun engine ->
                           heard t engine ~at:s.peer ~from:d))
                  then transport_failure t engine d s)
                t.sessions.(d)
          done;
          tick (Engine.now engine +. keepalive))
  in
  tick (Engine.now engine +. keepalive)

let originate t engine ~domain prefix =
  let cell =
    match Hashtbl.find_opt t.origins domain with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.origins domain c;
        c
  in
  if not (List.exists (Prefix.equal prefix) !cell) then begin
    cell := prefix :: !cell;
    recompute_best t engine domain prefix
  end

let withdraw t engine ~domain prefix =
  match Hashtbl.find_opt t.origins domain with
  | None -> ()
  | Some cell ->
      if List.exists (Prefix.equal prefix) !cell then begin
        cell := List.filter (fun p -> not (Prefix.equal p prefix)) !cell;
        recompute_best t engine domain prefix
      end

let originate_all_domain_prefixes t engine =
  for d = 0 to Internet.num_domains t.inet - 1 do
    originate t engine ~domain:d (Internet.domain t.inet d).Internet.prefix
  done

let best_path t ~domain prefix =
  Option.map (fun c -> c.path) (Hashtbl.find_opt t.best (domain, prefix))

let stats t =
  {
    updates = t.updates;
    best_changes = t.best_changes;
    last_change = t.last_change;
    keepalives = t.keepalives;
    resets = t.resets;
    shed_retries = t.shed_retries;
  }

let agrees_with_synchronous t =
  let reference = Bgp.create ~config:t.config t.inet in
  Hashtbl.iter
    (fun d ps -> List.iter (fun p -> Bgp.originate reference ~domain:d p) !ps)
    t.origins;
  ignore (Bgp.converge reference);
  let disagreement = ref None in
  let prefixes =
    Hashtbl.fold (fun _ ps acc -> !ps @ acc) t.origins []
    |> List.sort_uniq Prefix.compare
  in
  for d = 0 to Internet.num_domains t.inet - 1 do
    List.iter
      (fun p ->
        let sync =
          Option.map (fun r -> r.Bgp.as_path) (Bgp.route_to reference ~domain:d p)
        in
        let dyn = best_path t ~domain:d p in
        if sync <> dyn && !disagreement = None then
          disagreement :=
            Some
              (Printf.sprintf "domain %d, %s: sync=%s dyn=%s" d
                 (Prefix.to_string p)
                 (match sync with
                 | Some path -> String.concat "," (List.map string_of_int path)
                 | None -> "-")
                 (match dyn with
                 | Some path -> String.concat "," (List.map string_of_int path)
                 | None -> "-")))
      prefixes
  done;
  match !disagreement with None -> Ok () | Some msg -> Error msg
