module Internet = Topology.Internet
module Igp = Routing.Igp
module Bgp = Interdomain.Bgp
module Prefix = Netcore.Prefix
module Packet = Netcore.Packet
module Addressing = Netcore.Addressing
module Ipv4 = Netcore.Ipv4

type env = {
  inet : Internet.t;
  igps : Igp.t array;
  bgp : Bgp.t;
}

let make_env ?config ?(flavor_of = fun _ -> Igp.Linkstate_igp) inet =
  let igps =
    Array.init (Internet.num_domains inet) (fun d ->
        Igp.compute inet ~domain:d ~flavor:(flavor_of d))
  in
  let bgp = Bgp.create ?config inet in
  Bgp.originate_all_domain_prefixes bgp;
  ignore (Bgp.converge bgp);
  { inet; igps; bgp }

let reconverge env = Bgp.converge env.bgp

type drop_reason = Ttl_expired | No_route | Stuck | Link_down | Queue_full | Shed

type outcome =
  | Router_accepted of int
  | Endhost_accepted of int
  | Dropped of drop_reason

type trace = { hops : int list; outcome : outcome }

let hop_count t = max 0 (List.length t.hops - 1)

let delivered t =
  match t.outcome with
  | Router_accepted _ | Endhost_accepted _ -> true
  | Dropped _ -> false

(* One forwarding decision at router [r] for destination [dst]. *)
type decision =
  | Accept_router
  | Accept_endhost of int
  | Next of int
  | Drop_no_route

let matching_group igp dst =
  List.find_opt (fun g -> Prefix.mem dst g) (Igp.groups igp)

let intra_target env r dst =
  (* the router inside r's domain that [dst] resolves to *)
  let d = (Internet.router env.inet r).rdomain in
  if Addressing.is_router_address dst then
    match Internet.router_of_addr env.inet dst with
    | Some rt when rt.rdomain = d -> Some (`Router rt.rid)
    | _ -> None
  else if Addressing.is_endhost_address dst then
    match Internet.endhost_of_addr env.inet dst with
    | Some h when h.hdomain = d -> Some (`Endhost h)
    | _ -> None
  else None

let decide env r dst =
  let router = Internet.router env.inet r in
  let d = router.rdomain in
  let igp = env.igps.(d) in
  if Ipv4.equal dst router.raddr then Accept_router
  else
    (* 1. intra-domain anycast *)
    let anycast_decision =
      match matching_group igp dst with
      | None -> None
      | Some g -> (
          match Igp.anycast_route igp ~src:r ~group:g with
          | Some d when d.Igp.deliver -> Some Accept_router
          | Some d -> Some (Next d.Igp.next_hop)
          | None -> None (* no member here: fall through to unicast *))
    in
    match anycast_decision with
    | Some dec -> dec
    | None -> (
        let own_prefix = (Internet.domain env.inet d).prefix in
        if Prefix.mem dst own_prefix then
          (* 2. local unicast *)
          match intra_target env r dst with
          | Some (`Router target) ->
              if target = r then Accept_router
              else (
                match Igp.next_hop igp ~src:r ~dst:target with
                | Some nh -> Next nh
                | None -> Drop_no_route)
          | Some (`Endhost h) ->
              if h.Internet.access_router = r then Accept_endhost h.Internet.hid
              else (
                match Igp.next_hop igp ~src:r ~dst:h.Internet.access_router with
                | Some nh -> Next nh
                | None -> Drop_no_route)
          | None -> Drop_no_route
        else
          (* 3. inter-domain *)
          match Bgp.lookup env.bgp ~domain:d dst with
          | None -> Drop_no_route
          | Some route -> (
              match Bgp.egress_link env.bgp ~domain:d route.Bgp.prefix with
              | None -> Drop_no_route
              | Some link ->
                  if link.Internet.a_router = r then Next link.Internet.b_router
                  else (
                    match
                      Igp.next_hop igp ~src:r ~dst:link.Internet.a_router
                    with
                    | Some nh -> Next nh
                    | None -> Drop_no_route)))

let forward env packet ~entry =
  let dst = packet.Packet.dst in
  let rec go r ttl acc =
    let acc = r :: acc in
    match decide env r dst with
    | Accept_router -> { hops = List.rev acc; outcome = Router_accepted r }
    | Accept_endhost h -> { hops = List.rev acc; outcome = Endhost_accepted h }
    | Drop_no_route -> { hops = List.rev acc; outcome = Dropped No_route }
    | Next nh ->
        if ttl <= 1 then { hops = List.rev acc; outcome = Dropped Ttl_expired }
        else if nh = r then { hops = List.rev acc; outcome = Dropped Stuck }
        else go nh (ttl - 1) acc
  in
  go entry packet.Packet.ttl []

let send_from_endhost env packet ~endhost =
  let h = Internet.endhost env.inet endhost in
  forward env packet ~entry:h.Internet.access_router

let anycast_member_reached env ~dst ~entry =
  let probe = Packet.make_data ~src:Ipv4.any ~dst "probe" in
  match (forward env probe ~entry).outcome with
  | Router_accepted r -> Some r
  | Endhost_accepted _ | Dropped _ -> None

let path_metric env trace =
  let rec go = function
    | a :: (b :: _ as rest) ->
        (match Topology.Graph.edge_weight env.inet.Internet.graph a b with
        | Some w -> w
        | None -> 0.0)
        +. go rest
    | [ _ ] | [] -> 0.0
  in
  go trace.hops
