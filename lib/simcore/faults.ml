module Rng = Topology.Rng

type policy = {
  loss : float;
  dup : float;
  extra_delay : float;
  jitter : float;
  capacity : int;
}

let reliable =
  { loss = 0.0; dup = 0.0; extra_delay = 0.0; jitter = 0.0; capacity = 0 }

let lossy ?(dup = 0.0) ?(extra_delay = 0.0) ?(jitter = 0.0) ?(capacity = 0) loss =
  if loss < 0.0 || loss > 1.0 then invalid_arg "Faults.lossy: loss not in [0,1]";
  if capacity < 0 then invalid_arg "Faults.lossy: negative capacity";
  { loss; dup; extra_delay; jitter; capacity }

let limited capacity =
  if capacity <= 0 then invalid_arg "Faults.limited: capacity must be positive";
  { reliable with capacity }

type stats = {
  sent : int;
  delivered : int;
  lost : int;
  cut : int;
  dead : int;
  shed : int;
  duplicated : int;
  reordered : int;
}

type outcome = Sent | Lost | Cut | Dead | Shed
type prio = Bulk | Keepalive

(* Per-directed-pair capacity accounting: messages admitted in the
   current unit-time window. *)
type window = { mutable w_start : float; mutable w_used : int }

type t = {
  rng : Rng.t;
  mutable policy : src:int -> dst:int -> policy;
  fifo : bool;
  last_delivery : (int * int, float) Hashtbl.t;  (* per directed pair *)
  windows : (int * int, window) Hashtbl.t;  (* per directed pair *)
  down_links : (int * int, unit) Hashtbl.t;
  down_nodes : (int, unit) Hashtbl.t;
  mutable on_crash : (Engine.t -> int -> unit) list;
  mutable on_restart : (Engine.t -> int -> unit) list;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable cut : int;
  mutable dead : int;
  mutable shed : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create ?(policy = fun ~src:_ ~dst:_ -> reliable) ?(fifo = false) seed =
  {
    rng = Rng.create seed;
    policy;
    fifo;
    last_delivery = Hashtbl.create 16;
    windows = Hashtbl.create 16;
    down_links = Hashtbl.create 8;
    down_nodes = Hashtbl.create 8;
    on_crash = [];
    on_restart = [];
    sent = 0;
    delivered = 0;
    lost = 0;
    cut = 0;
    dead = 0;
    shed = 0;
    duplicated = 0;
    reordered = 0;
  }

let set_policy t policy = t.policy <- policy

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    cut = t.cut;
    dead = t.dead;
    shed = t.shed;
    duplicated = t.duplicated;
    reordered = t.reordered;
  }

(* links are undirected: one switch covers both directions *)
let norm a b = if a <= b then (a, b) else (b, a)

let link_up t a b = not (Hashtbl.mem t.down_links (norm a b))
let node_up t n = not (Hashtbl.mem t.down_nodes n)
let set_link_down t a b = Hashtbl.replace t.down_links (norm a b) ()
let set_link_up t a b = Hashtbl.remove t.down_links (norm a b)

let on_crash t f = t.on_crash <- f :: t.on_crash
let on_restart t f = t.on_restart <- f :: t.on_restart

let crash t engine node =
  if node_up t node then begin
    Hashtbl.replace t.down_nodes node ();
    List.iter (fun f -> f engine node) (List.rev t.on_crash)
  end

let restart t engine node =
  if not (node_up t node) then begin
    Hashtbl.remove t.down_nodes node;
    List.iter (fun f -> f engine node) (List.rev t.on_restart)
  end

let schedule_outage t engine ~node ~at ~duration =
  if duration < 0.0 then invalid_arg "Faults.schedule_outage: negative duration";
  Engine.schedule_at engine ~time:at (fun engine -> crash t engine node);
  Engine.schedule_at engine ~time:(at +. duration) (fun engine ->
      restart t engine node)

let flap_link t engine ~a ~b ~down_at ~up_at =
  if up_at < down_at then invalid_arg "Faults.flap_link: up before down";
  Engine.schedule_at engine ~time:down_at (fun _ -> set_link_down t a b);
  Engine.schedule_at engine ~time:up_at (fun _ -> set_link_up t a b)

let schedule_flap_train t engine ~a ~b ~start ~cycles ~period ~down_for =
  if cycles <= 0 then invalid_arg "Faults.schedule_flap_train: cycles <= 0";
  if down_for <= 0.0 || down_for > period then
    invalid_arg "Faults.schedule_flap_train: down_for outside (0, period]";
  for i = 0 to cycles - 1 do
    let down_at = start +. (float_of_int i *. period) in
    flap_link t engine ~a ~b ~down_at ~up_at:(down_at +. down_for)
  done

(* One transmission attempt: all randomness drawn now (send time), so
   the outcome of a message never depends on what else is in flight.
   Returns false when the loss draw kills the attempt. *)
let attempt t engine ~src ~dst ~delay ~(p : policy) action =
  if Rng.bernoulli t.rng p.loss then begin
    t.lost <- t.lost + 1;
    false
  end
  else begin
    let extra =
      (if p.extra_delay > 0.0 then Rng.exponential t.rng p.extra_delay else 0.0)
      +. (if p.jitter > 0.0 then Rng.float t.rng p.jitter else 0.0)
    in
    let at = Engine.now engine +. delay +. extra in
    let at =
      (* a FIFO channel never overtakes: clamp to the last delivery
         time; ties keep send order via the engine's seq numbers *)
      if t.fifo then
        match Hashtbl.find_opt t.last_delivery (src, dst) with
        | Some last when last > at -> last
        | _ -> at
      else begin
        (* datagram channel: a delivery landing strictly before one
           already on the wire is an observable reordering *)
        (match Hashtbl.find_opt t.last_delivery (src, dst) with
        | Some last when last > at -> t.reordered <- t.reordered + 1
        | _ -> ());
        at
      end
    in
    (match Hashtbl.find_opt t.last_delivery (src, dst) with
    | Some last when last > at -> ()
    | _ -> Hashtbl.replace t.last_delivery (src, dst) at);
    Engine.schedule_at engine ~time:at (fun engine ->
        (* a receiver that crashed while the message was in flight
           cannot process it *)
        if node_up t dst then begin
          t.delivered <- t.delivered + 1;
          action engine
        end
        else t.dead <- t.dead + 1);
    true
  end

(* Capacity admission over fixed unit-time windows anchored at integer
   simulation times — deterministic, no randomness. A [Bulk] message
   is shed once the window's budget is spent; [Keepalive] traffic gets
   twice the budget, so keepalives are never shed before bulk sends:
   any window state that sheds a keepalive has been shedding bulk
   messages since half that many admissions ago. *)
let over_capacity t engine ~src ~dst ~prio capacity =
  capacity > 0
  && begin
       let now = Engine.now engine in
       let w_start = Float.of_int (int_of_float now) in
       let w =
         match Hashtbl.find_opt t.windows (src, dst) with
         | Some w ->
             if w.w_start < w_start then begin
               w.w_start <- w_start;
               w.w_used <- 0
             end;
             w
         | None ->
             let w = { w_start; w_used = 0 } in
             Hashtbl.replace t.windows (src, dst) w;
             w
       in
       let budget =
         match prio with Bulk -> capacity | Keepalive -> 2 * capacity
       in
       if w.w_used >= budget then true
       else begin
         w.w_used <- w.w_used + 1;
         false
       end
     end

let send ?(prio = Bulk) t engine ~src ~dst ~delay action =
  if not (node_up t src) || not (node_up t dst) then begin
    t.dead <- t.dead + 1;
    Dead
  end
  else if not (link_up t src dst) then begin
    t.cut <- t.cut + 1;
    Cut
  end
  else begin
    let p = t.policy ~src ~dst in
    if over_capacity t engine ~src ~dst ~prio p.capacity then begin
      (* overload, not failure: the sender should retry with backoff,
         not reset the session (DESIGN.md §13) *)
      t.shed <- t.shed + 1;
      Shed
    end
    else begin
      t.sent <- t.sent + 1;
      let landed = attempt t engine ~src ~dst ~delay ~p action in
      if Rng.bernoulli t.rng p.dup then begin
        t.duplicated <- t.duplicated + 1;
        ignore (attempt t engine ~src ~dst ~delay ~p action)
      end;
      if landed then Sent else Lost
    end
  end
