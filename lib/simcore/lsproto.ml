module Spt = Routing.Spt
module Internet = Topology.Internet
module Graph = Topology.Graph
module Prefix = Netcore.Prefix

type lsa = {
  origin : int;
  seq : int;
  links : (int * float) list;
  groups : Prefix.t list;
}

type stats = {
  messages : int;
  originations : int;
  last_change : float;
  acks : int;
  retransmits : int;
  shed_retries : int;
}

(* per-(sender, neighbor, origin) reliable-flooding state *)
type retx = {
  mutable lsa : lsa;
  mutable attempts : int;
  mutable timer : Engine.handle option;
}

type t = {
  inet : Internet.t;
  dom : int;
  delay : float;
  faults : Faults.t option;
  router_ids : int array;
  neighbors : int list array;  (* by local index: intra-domain adjacency *)
  lsdbs : (int, lsa) Hashtbl.t array;  (* by local index: origin -> lsa *)
  seqs : int array;
      (* by local index: monotonic origination counters — the one piece
         of state that survives a crash (OSPF keeps it effectively
         monotonic via the LSA it hears back; we model NVRAM) *)
  own_groups : (int, Prefix.t list ref) Hashtbl.t;  (* router id -> groups *)
  retx : (int * int * int, retx) Hashtbl.t;  (* (sender, nb, origin) *)
  mutable messages : int;
  mutable originations : int;
  mutable last_change : float;
  mutable acks : int;
  mutable retransmits : int;
  mutable shed_retries : int;
}

(* retransmit schedule: capped exponential backoff in units of the
   link delay; generous attempt cap so convergence survives heavy loss
   while the engine still drains against a dead neighbor *)
let max_attempts = 12
let rto0 t = 4.0 *. t.delay
let rto_cap t = 32.0 *. t.delay

let local_index t rid = (Internet.router t.inet rid).Internet.rindex

let in_domain t rid =
  rid >= 0
  && rid < Internet.num_routers t.inet
  && (Internet.router t.inet rid).Internet.rdomain = t.dom

let alive t rid =
  match t.faults with None -> true | Some f -> Faults.node_up f rid

(* raw message handoff; delivery is the fabric's problem — except a
   [Shed] verdict (capacity overload, not loss), which the sender
   answers with a bounded exponential-backoff re-post: acks ride
   [Keepalive] priority so flooding stays acknowledged under overload;
   an LSA abandoned after the retry cap is repaired by the
   ack/retransmit machinery like any lost transmission. *)
let max_shed_retries = 4

let rec post ?(prio = Faults.Bulk) ?(attempt = 0) t engine ~src ~dst action =
  match t.faults with
  | None -> Engine.schedule engine ~delay:t.delay action
  | Some f -> (
      match Faults.send ~prio f engine ~src ~dst ~delay:t.delay action with
      | Faults.Shed when attempt < max_shed_retries ->
          t.shed_retries <- t.shed_retries + 1;
          let backoff = t.delay *. Float.of_int (1 lsl attempt) in
          Engine.schedule engine ~delay:backoff (fun engine ->
              if alive t src then
                post ~prio ~attempt:(attempt + 1) t engine ~src ~dst action)
      | Faults.Sent | Faults.Lost | Faults.Cut | Faults.Dead | Faults.Shed ->
          ())

let rec receive t engine ~rid ~from lsa =
  let li = local_index t rid in
  (* every received LSA is acknowledged, fresh or stale — a duplicate
     means our earlier ack (or the LSA itself) was lost *)
  (match from with
  | Some from when Option.is_some t.faults ->
      t.acks <- t.acks + 1;
      post ~prio:Faults.Keepalive t engine ~src:rid ~dst:from (fun engine ->
          receive_ack t engine ~rid:from ~nb:rid ~origin:lsa.origin ~seq:lsa.seq)
  | _ -> ());
  let fresher =
    match Hashtbl.find_opt t.lsdbs.(li) lsa.origin with
    | Some cur -> lsa.seq > cur.seq
    | None -> true
  in
  if fresher then begin
    Hashtbl.replace t.lsdbs.(li) lsa.origin lsa;
    t.last_change <- Engine.now engine;
    flood t engine ~rid ~except:from lsa
  end

and receive_ack t engine ~rid ~nb ~origin ~seq =
  match Hashtbl.find_opt t.retx (rid, nb, origin) with
  | Some r when r.lsa.seq <= seq ->
      (match r.timer with Some h -> Engine.cancel engine h | None -> ());
      Hashtbl.remove t.retx (rid, nb, origin)
  | _ -> ()

and flood t engine ~rid ~except lsa =
  let li = local_index t rid in
  List.iter
    (fun nb -> if Some nb <> except then transmit t engine ~src:rid ~dst:nb lsa)
    t.neighbors.(li)

(* one hop of flooding; with a fault fabric the transmission is
   guarded by an ack-or-retransmit timer *)
and transmit t engine ~src ~dst lsa =
  t.messages <- t.messages + 1;
  post t engine ~src ~dst (fun engine ->
      receive t engine ~rid:dst ~from:(Some src) lsa);
  if Option.is_some t.faults then begin
    let r =
      match Hashtbl.find_opt t.retx (src, dst, lsa.origin) with
      | Some r ->
          r.lsa <- (if lsa.seq > r.lsa.seq then lsa else r.lsa);
          r.attempts <- 0;
          (match r.timer with Some h -> Engine.cancel engine h | None -> ());
          r
      | None ->
          let r = { lsa; attempts = 0; timer = None } in
          Hashtbl.replace t.retx (src, dst, lsa.origin) r;
          r
    in
    arm t engine ~src ~dst r
  end

and arm t engine ~src ~dst r =
  let rto = Float.min (rto_cap t) (rto0 t *. (2.0 ** float_of_int r.attempts)) in
  r.timer <-
    Some
      (Engine.timer engine ~delay:rto (fun engine ->
           r.timer <- None;
           if alive t src then
             if r.attempts + 1 >= max_attempts then
               (* give up: the neighbor is gone for good, or a restart
                  resync will repair the gap *)
               Hashtbl.remove t.retx (src, dst, r.lsa.origin)
             else begin
               r.attempts <- r.attempts + 1;
               t.retransmits <- t.retransmits + 1;
               t.messages <- t.messages + 1;
               post t engine ~src ~dst (fun engine ->
                   receive t engine ~rid:dst ~from:(Some src) r.lsa);
               arm t engine ~src ~dst r
             end))

let current_groups t rid =
  match Hashtbl.find_opt t.own_groups rid with Some g -> !g | None -> []

let originate t engine rid =
  let li = local_index t rid in
  t.seqs.(li) <- t.seqs.(li) + 1;
  let seq = t.seqs.(li) in
  let links =
    Graph.neighbors t.inet.Internet.graph rid
    |> List.filter (fun (nb, _) -> (Internet.router t.inet nb).Internet.rdomain = t.dom)
  in
  let lsa = { origin = rid; seq; links; groups = current_groups t rid } in
  t.originations <- t.originations + 1;
  (* install locally and flood *)
  Hashtbl.replace t.lsdbs.(li) rid lsa;
  t.last_change <- Engine.now engine;
  flood t engine ~rid ~except:None lsa

(* crash: the LSDB and any in-progress reliable floods are soft state *)
let crashed t engine rid =
  if in_domain t rid then begin
    let li = local_index t rid in
    Hashtbl.reset t.lsdbs.(li);
    let mine =
      Hashtbl.fold
        (fun ((s, _, _) as k) _ acc -> if s = rid then k :: acc else acc)
        t.retx []
      |> List.sort (fun (_, n1, o1) (_, n2, o2) ->
             if n1 <> n2 then Int.compare n1 n2 else Int.compare o1 o2)
    in
    List.iter
      (fun k ->
        (match (Hashtbl.find t.retx k).timer with
        | Some h -> Engine.cancel engine h
        | None -> ());
        Hashtbl.remove t.retx k)
      mine
  end

(* restart: re-originate (the monotonic seq counter survives, so the
   new LSA supersedes any pre-crash copy still floating around) and
   re-form adjacencies — each live neighbor pushes its full LSDB, the
   hello/database-exchange handshake abstracted to its effect *)
let restarted t engine rid =
  if in_domain t rid then begin
    originate t engine rid;
    let li = local_index t rid in
    List.iter
      (fun nb ->
        if alive t nb then begin
          let nli = local_index t nb in
          let db =
            Hashtbl.fold (fun _ l acc -> l :: acc) t.lsdbs.(nli) []
            |> List.sort (fun a b -> Int.compare a.origin b.origin)
          in
          List.iter (fun l -> transmit t engine ~src:nb ~dst:rid l) db
        end)
      t.neighbors.(li)
  end

let create ?(link_delay = 1.0) ?faults inet ~domain =
  let d = Internet.domain inet domain in
  let n = Array.length d.Internet.router_ids in
  let neighbors =
    Array.map
      (fun rid ->
        Graph.neighbors inet.Internet.graph rid
        |> List.filter_map (fun (nb, _) ->
               if (Internet.router inet nb).Internet.rdomain = domain then Some nb
               else None))
      d.Internet.router_ids
  in
  let t =
    {
      inet;
      dom = domain;
      delay = link_delay;
      faults;
      router_ids = d.Internet.router_ids;
      neighbors;
      lsdbs = Array.init n (fun _ -> Hashtbl.create 8);
      seqs = Array.make n 0;
      own_groups = Hashtbl.create 8;
      retx = Hashtbl.create 32;
      messages = 0;
      originations = 0;
      last_change = 0.0;
      acks = 0;
      retransmits = 0;
      shed_retries = 0;
    }
  in
  (match faults with
  | Some f ->
      Faults.on_crash f (fun engine c -> crashed t engine c);
      Faults.on_restart f (fun engine c -> restarted t engine c)
  | None -> ());
  t

let start t engine = Array.iter (fun rid -> originate t engine rid) t.router_ids

let advertise_anycast t engine ~router prefix =
  if not (in_domain t router) then
    invalid_arg "Lsproto.advertise_anycast: router not in domain";
  let cell =
    match Hashtbl.find_opt t.own_groups router with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.own_groups router c;
        c
  in
  if not (List.mem prefix !cell) then cell := prefix :: !cell;
  originate t engine router

let withdraw_anycast t engine ~router prefix =
  if not (in_domain t router) then
    invalid_arg "Lsproto.withdraw_anycast: router not in domain";
  (match Hashtbl.find_opt t.own_groups router with
  | Some c -> c := List.filter (fun p -> not (Prefix.equal p prefix)) !c
  | None -> ());
  originate t engine router

let link_failed t engine a b =
  if not (in_domain t a && in_domain t b) then
    invalid_arg "Lsproto.link_failed: router not in domain";
  let drop rid gone =
    let li = local_index t rid in
    t.neighbors.(li) <- List.filter (fun nb -> nb <> gone) t.neighbors.(li)
  in
  drop a b;
  drop b a;
  originate t engine a;
  originate t engine b

let link_restored t engine a b =
  if not (in_domain t a && in_domain t b) then
    invalid_arg "Lsproto.link_restored: router not in domain";
  (* re-derive each endpoint's adjacency list from the (repaired)
     graph so neighbor order stays canonical across fail/restore *)
  let refresh rid =
    let li = local_index t rid in
    t.neighbors.(li) <-
      Graph.neighbors t.inet.Internet.graph rid
      |> List.filter_map (fun (nb, _) ->
             if (Internet.router t.inet nb).Internet.rdomain = t.dom then
               Some nb
             else None)
  in
  refresh a;
  refresh b;
  originate t engine a;
  originate t engine b

let lsa_equal a b =
  a.origin = b.origin && a.seq = b.seq
  && List.equal
       (fun (i, w) (j, x) -> i = j && Float.equal w x)
       a.links b.links
  && List.equal Prefix.equal a.groups b.groups

let lsdb_synchronized t =
  let canonical db =
    Hashtbl.fold (fun o l acc -> (o, l) :: acc) db []
    (* origins are the table keys, so they are unique per view *)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let view_equal =
    List.equal (fun (o1, l1) (o2, l2) -> o1 = o2 && lsa_equal l1 l2)
  in
  match Array.to_list t.lsdbs with
  | [] -> true
  | first :: rest ->
      let ref_view = canonical first in
      List.for_all (fun db -> view_equal (canonical db) ref_view) rest

let stats t =
  {
    messages = t.messages;
    originations = t.originations;
    last_change = t.last_change;
    acks = t.acks;
    retransmits = t.retransmits;
    shed_retries = t.shed_retries;
  }

let spf t ~router =
  if not (in_domain t router) then
    invalid_arg "Lsproto.spf: router not in domain";
  let li = local_index t router in
  (* build a graph over global router ids from this router's LSDB,
     with the OSPF two-way check: a link counts only when both
     endpoints advertise it *)
  let db = t.lsdbs.(li) in
  let advertises origin nb =
    match Hashtbl.find_opt db origin with
    | Some lsa -> List.exists (fun (x, _) -> x = nb) lsa.links
    | None -> false
  in
  let g = Graph.create ~n:(Internet.num_routers t.inet) in
  Hashtbl.iter
    (fun origin lsa ->
      List.iter
        (fun (nb, w) ->
          if advertises nb origin && not (Graph.has_edge g origin nb) then
            Graph.add_edge g origin nb w)
        lsa.links)
    db;
  Spt.dijkstra_filtered g ~src:router ~allow:(fun rid ->
      (Internet.router t.inet rid).Internet.rdomain = t.dom)

let distance_view t ~router ~dst =
  if not (in_domain t router && in_domain t dst) then infinity
  else Spt.distance (spf t ~router) dst

let members_view t ~router prefix =
  if not (in_domain t router) then []
  else begin
    let li = local_index t router in
    Hashtbl.fold
      (fun origin lsa acc ->
        if List.exists (Prefix.equal prefix) lsa.groups then origin :: acc
        else acc)
      t.lsdbs.(li) []
    |> List.sort Int.compare
  end
