module Spt = Routing.Spt
module Internet = Topology.Internet
module Graph = Topology.Graph
module Prefix = Netcore.Prefix

type lsa = {
  origin : int;
  seq : int;
  links : (int * float) list;
  groups : Prefix.t list;
}

type stats = { messages : int; originations : int; last_change : float }

type t = {
  inet : Internet.t;
  dom : int;
  delay : float;
  router_ids : int array;
  neighbors : int list array;  (* by local index: intra-domain adjacency *)
  lsdbs : (int, lsa) Hashtbl.t array;  (* by local index: origin -> lsa *)
  own_groups : (int, Prefix.t list ref) Hashtbl.t;  (* router id -> groups *)
  mutable messages : int;
  mutable originations : int;
  mutable last_change : float;
}

let local_index t rid = (Internet.router t.inet rid).Internet.rindex

let in_domain t rid =
  rid >= 0
  && rid < Internet.num_routers t.inet
  && (Internet.router t.inet rid).Internet.rdomain = t.dom

let create ?(link_delay = 1.0) inet ~domain =
  let d = Internet.domain inet domain in
  let n = Array.length d.Internet.router_ids in
  let neighbors =
    Array.map
      (fun rid ->
        Graph.neighbors inet.Internet.graph rid
        |> List.filter_map (fun (nb, _) ->
               if (Internet.router inet nb).Internet.rdomain = domain then Some nb
               else None))
      d.Internet.router_ids
  in
  {
    inet;
    dom = domain;
    delay = link_delay;
    router_ids = d.Internet.router_ids;
    neighbors;
    lsdbs = Array.init n (fun _ -> Hashtbl.create 8);
    own_groups = Hashtbl.create 8;
    messages = 0;
    originations = 0;
    last_change = 0.0;
  }

(* deliver [lsa] to router [rid]; flood onward if newer *)
let rec receive t engine ~rid ~from lsa =
  let li = local_index t rid in
  let fresher =
    match Hashtbl.find_opt t.lsdbs.(li) lsa.origin with
    | Some cur -> lsa.seq > cur.seq
    | None -> true
  in
  if fresher then begin
    Hashtbl.replace t.lsdbs.(li) lsa.origin lsa;
    t.last_change <- Engine.now engine;
    flood t engine ~rid ~except:from lsa
  end

and flood t engine ~rid ~except lsa =
  let li = local_index t rid in
  List.iter
    (fun nb ->
      if Some nb <> except then begin
        t.messages <- t.messages + 1;
        Engine.schedule engine ~delay:t.delay (fun engine ->
            receive t engine ~rid:nb ~from:(Some rid) lsa)
      end)
    t.neighbors.(li)

let current_groups t rid =
  match Hashtbl.find_opt t.own_groups rid with Some g -> !g | None -> []

let originate t engine rid =
  let li = local_index t rid in
  let seq =
    match Hashtbl.find_opt t.lsdbs.(li) rid with
    | Some cur -> cur.seq + 1
    | None -> 1
  in
  let links =
    Graph.neighbors t.inet.Internet.graph rid
    |> List.filter (fun (nb, _) -> (Internet.router t.inet nb).Internet.rdomain = t.dom)
  in
  let lsa = { origin = rid; seq; links; groups = current_groups t rid } in
  t.originations <- t.originations + 1;
  (* install locally and flood *)
  Hashtbl.replace t.lsdbs.(li) rid lsa;
  t.last_change <- Engine.now engine;
  flood t engine ~rid ~except:None lsa

let start t engine = Array.iter (fun rid -> originate t engine rid) t.router_ids

let advertise_anycast t engine ~router prefix =
  if not (in_domain t router) then
    invalid_arg "Lsproto.advertise_anycast: router not in domain";
  let cell =
    match Hashtbl.find_opt t.own_groups router with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.own_groups router c;
        c
  in
  if not (List.mem prefix !cell) then cell := prefix :: !cell;
  originate t engine router

let withdraw_anycast t engine ~router prefix =
  if not (in_domain t router) then
    invalid_arg "Lsproto.withdraw_anycast: router not in domain";
  (match Hashtbl.find_opt t.own_groups router with
  | Some c -> c := List.filter (fun p -> not (Prefix.equal p prefix)) !c
  | None -> ());
  originate t engine router

let link_failed t engine a b =
  if not (in_domain t a && in_domain t b) then
    invalid_arg "Lsproto.link_failed: router not in domain";
  let drop rid gone =
    let li = local_index t rid in
    t.neighbors.(li) <- List.filter (fun nb -> nb <> gone) t.neighbors.(li)
  in
  drop a b;
  drop b a;
  originate t engine a;
  originate t engine b

let lsa_equal a b =
  a.origin = b.origin && a.seq = b.seq
  && List.equal
       (fun (i, w) (j, x) -> i = j && Float.equal w x)
       a.links b.links
  && List.equal Prefix.equal a.groups b.groups

let lsdb_synchronized t =
  let canonical db =
    Hashtbl.fold (fun o l acc -> (o, l) :: acc) db []
    (* origins are the table keys, so they are unique per view *)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let view_equal =
    List.equal (fun (o1, l1) (o2, l2) -> o1 = o2 && lsa_equal l1 l2)
  in
  match Array.to_list t.lsdbs with
  | [] -> true
  | first :: rest ->
      let ref_view = canonical first in
      List.for_all (fun db -> view_equal (canonical db) ref_view) rest

let stats t =
  { messages = t.messages; originations = t.originations; last_change = t.last_change }

let spf t ~router =
  if not (in_domain t router) then
    invalid_arg "Lsproto.spf: router not in domain";
  let li = local_index t router in
  (* build a graph over global router ids from this router's LSDB,
     with the OSPF two-way check: a link counts only when both
     endpoints advertise it *)
  let db = t.lsdbs.(li) in
  let advertises origin nb =
    match Hashtbl.find_opt db origin with
    | Some lsa -> List.exists (fun (x, _) -> x = nb) lsa.links
    | None -> false
  in
  let g = Graph.create ~n:(Internet.num_routers t.inet) in
  Hashtbl.iter
    (fun origin lsa ->
      List.iter
        (fun (nb, w) ->
          if advertises nb origin && not (Graph.has_edge g origin nb) then
            Graph.add_edge g origin nb w)
        lsa.links)
    db;
  Spt.dijkstra_filtered g ~src:router ~allow:(fun rid ->
      (Internet.router t.inet rid).Internet.rdomain = t.dom)

let distance_view t ~router ~dst =
  if not (in_domain t router && in_domain t dst) then infinity
  else Spt.distance (spf t ~router) dst

let members_view t ~router prefix =
  if not (in_domain t router) then []
  else begin
    let li = local_index t router in
    Hashtbl.fold
      (fun origin lsa acc ->
        if List.exists (Prefix.equal prefix) lsa.groups then origin :: acc
        else acc)
      t.lsdbs.(li) []
    |> List.sort Int.compare
  end
