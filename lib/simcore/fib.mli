(** Compiled per-router forwarding tables.

    {!Forward.forward} decides each hop by consulting the IGP, the
    anycast groups and BGP on the fly; this module materializes the
    same decisions into one longest-prefix-match table per router —
    the FIB a line card would hold, i.e. the data-plane side of §3.2's
    routing-state scalability question. Two uses:

    - {e state accounting}: FIB sizes per router class are the
      data-plane side of the paper's routing-state concern (E22);
    - {e verification}: compiled forwarding must agree with the
      on-the-fly forwarder everywhere (asserted by the test-suite).

    Tables are snapshots: recompile after any routing or deployment
    change. *)

type action =
  | Local  (** the address terminates at this router (own address or
               anycast delivery) *)
  | Attached of int  (** deliver to this directly attached endhost *)
  | Next_hop of int  (** forward to this adjacent router *)

type t
(** A FIB snapshot for every router of the internet. *)

val compile : Forward.env -> t
(** Materialize all routers' tables from the current control-plane
    state. *)

val lookup : t -> router:int -> Netcore.Ipv4.t -> action option
(** The compiled forwarding decision; [None] = drop (no route). *)

val table : t -> router:int -> action Netcore.Lpm.t
(** One router's compiled table — the line-card view a data-plane
    engine forwards against (and caches in front of). *)

val action_equal : action -> action -> bool
(** Structural equality on forwarding actions; the hook cache layers
    and agreement tests use to compare compiled decisions. *)

val size : t -> router:int -> int
(** Number of FIB entries at one router. *)

val total_entries : t -> int

val forward : t -> Forward.env -> Netcore.Packet.t -> entry:int -> Forward.trace
(** Forward a packet using only compiled tables (the [env] is used for
    trace metadata, not decisions). *)

val agrees_with_decide : t -> Forward.env -> samples:(int * Netcore.Ipv4.t) list -> (unit, string) result
(** Check that compiled forwarding and on-the-fly forwarding reach the
    same outcome for each (entry router, destination) sample. *)
