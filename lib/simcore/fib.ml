module Internet = Topology.Internet
module Igp = Routing.Igp
module Bgp = Interdomain.Bgp
module Prefix = Netcore.Prefix
module Lpm = Netcore.Lpm
module Ipv4 = Netcore.Ipv4
module Packet = Netcore.Packet

type action = Local | Attached of int | Next_hop of int
type t = { tables : action Lpm.t array }

let host_prefix addr = Prefix.make addr 32

let compile (env : Forward.env) =
  let inet = env.Forward.inet in
  let n = Internet.num_routers inet in
  let tables =
    Array.init n (fun r ->
        let router = Internet.router inet r in
        let d = router.Internet.rdomain in
        let igp = env.Forward.igps.(d) in
        let table = ref Lpm.empty in
        let add p a = table := Lpm.add p a !table in
        (* 1. inter-domain routes (most generic; overwritten by
           longer/equal local entries below) *)
        List.iter
          (fun route ->
            let p = route.Bgp.prefix in
            match Bgp.egress_link env.Forward.bgp ~domain:d p with
            | None -> () (* self-originated: local entries cover it *)
            | Some link ->
                if link.Internet.a_router = r then
                  add p (Next_hop link.Internet.b_router)
                else (
                  match
                    Igp.next_hop igp ~src:r ~dst:link.Internet.a_router
                  with
                  | Some nh -> add p (Next_hop nh)
                  | None -> ()))
          (Bgp.rib env.Forward.bgp ~domain:d);
        (* 2. anycast groups with members in this domain *)
        List.iter
          (fun g ->
            match Igp.anycast_route igp ~src:r ~group:g with
            | Some d when d.Igp.deliver -> add g Local
            | Some d -> add g (Next_hop d.Igp.next_hop)
            | None -> ())
          (Igp.groups igp);
        (* 3. intra-domain routers *)
        Array.iter
          (fun r2 ->
            if r2 = r then add (host_prefix router.Internet.raddr) Local
            else
              match Igp.next_hop igp ~src:r ~dst:r2 with
              | Some nh ->
                  add (host_prefix (Internet.router inet r2).Internet.raddr)
                    (Next_hop nh)
              | None -> ())
          (Internet.domain inet d).Internet.router_ids;
        (* 4. intra-domain endhosts *)
        Array.iter
          (fun hid ->
            let h = Internet.endhost inet hid in
            if h.Internet.access_router = r then
              add (host_prefix h.Internet.haddr) (Attached hid)
            else
              match
                Igp.next_hop igp ~src:r ~dst:h.Internet.access_router
              with
              | Some nh -> add (host_prefix h.Internet.haddr) (Next_hop nh)
              | None -> ())
          (Internet.domain inet d).Internet.endhost_ids;
        !table)
  in
  { tables }

let lookup t ~router addr = Lpm.lookup_value addr t.tables.(router)
let table t ~router = t.tables.(router)

let action_equal a b =
  match (a, b) with
  | Local, Local -> true
  | Attached x, Attached y -> x = y
  | Next_hop x, Next_hop y -> x = y
  | (Local | Attached _ | Next_hop _), _ -> false

let size t ~router = Lpm.cardinal t.tables.(router)

let total_entries t =
  Array.fold_left (fun acc tbl -> acc + Lpm.cardinal tbl) 0 t.tables

let forward t _env packet ~entry =
  let dst = packet.Packet.dst in
  let rec go r ttl acc =
    let acc = r :: acc in
    match lookup t ~router:r dst with
    | None -> { Forward.hops = List.rev acc; outcome = Forward.Dropped Forward.No_route }
    | Some Local -> { Forward.hops = List.rev acc; outcome = Forward.Router_accepted r }
    | Some (Attached h) ->
        { Forward.hops = List.rev acc; outcome = Forward.Endhost_accepted h }
    | Some (Next_hop nh) ->
        if ttl <= 1 then
          { Forward.hops = List.rev acc; outcome = Forward.Dropped Forward.Ttl_expired }
        else if nh = r then
          { Forward.hops = List.rev acc; outcome = Forward.Dropped Forward.Stuck }
        else go nh (ttl - 1) acc
  in
  go entry packet.Packet.ttl []

let outcome_eq a b =
  match (a, b) with
  | Forward.Router_accepted x, Forward.Router_accepted y -> x = y
  | Forward.Endhost_accepted x, Forward.Endhost_accepted y -> x = y
  | Forward.Dropped _, Forward.Dropped _ -> true
  | _ -> false

let agrees_with_decide t env ~samples =
  let disagreement = ref None in
  List.iter
    (fun (entry, dst) ->
      if !disagreement = None then begin
        let p = Packet.make_data ~src:Ipv4.any ~dst "fib-check" in
        let a = Forward.forward env p ~entry in
        let b = forward t env p ~entry in
        if not (outcome_eq a.Forward.outcome b.Forward.outcome) then
          disagreement :=
            Some
              (Printf.sprintf "entry %d -> %s: decide and FIB disagree" entry
                 (Ipv4.to_string dst))
      end)
    samples;
  match !disagreement with None -> Ok () | Some m -> Error m
