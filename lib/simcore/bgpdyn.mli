(** Asynchronous BGP dynamics with MRAI timers — how §3.2's anycast
    prefix actually propagates between domains.

    {!Interdomain.Bgp} computes the stable routing state by synchronous
    iteration; this module runs the protocol the way real BGP runs:
    per-session update messages with propagation delay, per-neighbor
    MRAI (minimum route advertisement interval) rate limiting, path
    exploration, and withdrawal on export-policy flips. Selection and
    export policy are identical to the synchronous engine, so the
    converged state must match it exactly — the test-suite asserts
    that.

    Why it matters for the paper: evolvability rides on BGP carrying
    new (anycast) prefixes, so the cost of injecting one — update
    messages, transient path churn, time to quiescence — is part of
    the deployment story (experiment E19). *)

type stats = {
  updates : int;  (** announce + withdraw messages sent *)
  best_changes : int;  (** times any domain's best route flipped (churn) *)
  last_change : float;  (** engine time of the last best-route change *)
  keepalives : int;  (** keepalive messages sent (E31 overhead) *)
  resets : int;  (** session halves torn down — hold expiry, transport
                     failure, crash *)
  shed_retries : int;
      (** sends refused by the fabric's capacity budget and retried
          with exponential backoff instead of resetting the session —
          the overload-survival path of DESIGN.md §13 *)
}

type t

val create :
  ?mrai:float ->
  ?link_delay:float ->
  ?jitter:float ->
  ?config:Interdomain.Bgp.config ->
  ?faults:Faults.t ->
  Topology.Internet.t ->
  t
(** [mrai] (default 2.0) is the per-neighbor minimum interval between
    successive advertisement batches; [link_delay] (default 0.1) the
    base session propagation delay; [jitter] (default 0) spreads each
    session's delay over [link_delay * \[1, 1+jitter\]], which is what
    induces realistic path exploration.

    [faults] routes every session message through a fault fabric
    (node ids = domain ids; build it with [~fifo:true] — BGP sessions
    ride TCP, which never reorders). A visibly failed send is treated
    as a TCP reset: both ends drop the session's state and resync via
    a full re-advertisement, which is how the protocol stays
    convergent under loss even without keepalives. Crash wipes the
    victim's soft state (RIBs, adjacencies); restart re-originates
    from configuration. Experiments must stop injection
    ({!Faults.set_policy}) and restart every node before comparing
    against the synchronous oracle. *)

val enable_timers :
  ?keepalive:float -> ?hold:float -> t -> Engine.t -> until:float -> unit
(** Run BGP's session liveness machinery until the horizon: every
    [keepalive] (default 1.0) each domain hellos all its neighbors; a
    session half that hears nothing for [hold] (default 3.5) is
    declared dead and torn down, and re-establishes — with a full
    re-advertisement, as after a real session reset — on the next
    hello heard. This is what lets neighbors detect a crashed domain
    (E31's crash sweeps) at the cost of the keepalive traffic counted
    in {!stats}. Hold expiries after [until] are ignored — the hellos
    stopped, which proves nothing about the peer — so for the final
    state to match the oracle, crashes must restart and loss must
    cease a few keepalive rounds before [until].
    @raise Invalid_argument unless [0 < keepalive < hold]. *)

val originate : t -> Engine.t -> domain:int -> Netcore.Prefix.t -> unit
(** The domain originates a prefix now; updates start flowing. Run the
    engine to quiescence. *)

val originate_all_domain_prefixes : t -> Engine.t -> unit

val withdraw : t -> Engine.t -> domain:int -> Netcore.Prefix.t -> unit
(** The domain stops originating the prefix. Withdrawals trigger the
    protocol's notorious path hunting: routers fall back to
    not-yet-withdrawn alternatives before giving up, so retiring a
    route costs more messages than announcing it (experiment E28). *)

val best_path : t -> domain:int -> Netcore.Prefix.t -> int list option
(** The current best AS path ([head] = the domain itself). *)

val stats : t -> stats

val agrees_with_synchronous : t -> (unit, string) result
(** Run the synchronous engine over the same internet, config and
    origins and compare every (domain, prefix) best path. [Error]
    carries the first disagreement. *)
