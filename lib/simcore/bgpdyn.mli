(** Asynchronous BGP dynamics with MRAI timers — how §3.2's anycast
    prefix actually propagates between domains.

    {!Interdomain.Bgp} computes the stable routing state by synchronous
    iteration; this module runs the protocol the way real BGP runs:
    per-session update messages with propagation delay, per-neighbor
    MRAI (minimum route advertisement interval) rate limiting, path
    exploration, and withdrawal on export-policy flips. Selection and
    export policy are identical to the synchronous engine, so the
    converged state must match it exactly — the test-suite asserts
    that.

    Why it matters for the paper: evolvability rides on BGP carrying
    new (anycast) prefixes, so the cost of injecting one — update
    messages, transient path churn, time to quiescence — is part of
    the deployment story (experiment E19). *)

type stats = {
  updates : int;  (** announce + withdraw messages sent *)
  best_changes : int;  (** times any domain's best route flipped (churn) *)
  last_change : float;  (** engine time of the last best-route change *)
}

type t

val create :
  ?mrai:float ->
  ?link_delay:float ->
  ?jitter:float ->
  ?config:Interdomain.Bgp.config ->
  Topology.Internet.t ->
  t
(** [mrai] (default 2.0) is the per-neighbor minimum interval between
    successive advertisement batches; [link_delay] (default 0.1) the
    base session propagation delay; [jitter] (default 0) spreads each
    session's delay over [link_delay * \[1, 1+jitter\]], which is what
    induces realistic path exploration. *)

val originate : t -> Engine.t -> domain:int -> Netcore.Prefix.t -> unit
(** The domain originates a prefix now; updates start flowing. Run the
    engine to quiescence. *)

val originate_all_domain_prefixes : t -> Engine.t -> unit

val withdraw : t -> Engine.t -> domain:int -> Netcore.Prefix.t -> unit
(** The domain stops originating the prefix. Withdrawals trigger the
    protocol's notorious path hunting: routers fall back to
    not-yet-withdrawn alternatives before giving up, so retiring a
    route costs more messages than announcing it (experiment E28). *)

val best_path : t -> domain:int -> Netcore.Prefix.t -> int list option
(** The current best AS path ([head] = the domain itself). *)

val stats : t -> stats

val agrees_with_synchronous : t -> (unit, string) result
(** Run the synchronous engine over the same internet, config and
    origins and compare every (domain, prefix) best path. [Error]
    carries the first disagreement. *)
