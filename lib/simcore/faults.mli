(** Deterministic fault injection for the distributed control plane.

    The paper's resilience claims — anycast "naturally lends itself to
    fault tolerance" (§2.2), vN-Bone partitions are "easily detected
    and repaired" (§3.3), BGP carries the new prefix through real-world
    churn (§3.2) — are only reproduced honestly if the protocols run
    over an unreliable fabric. This module interposes on every message
    handoff a protocol schedules on {!Engine}: per-link policies for
    drop probability, extra-delay distributions, duplication and
    reordering jitter; scripted link up/down flaps; and router
    crash/restart events that wipe the victim's soft state through
    registered handlers. All randomness flows through {!Topology.Rng}
    with an explicit seed, so every fault schedule is replayable
    (experiments E31/E32).

    Node ids are whatever the protocol speaks: domains for
    {!Bgpdyn}, router ids for {!Lsproto}. One fabric per protocol
    instance. *)

type policy = {
  loss : float;  (** per-transmission drop probability, in [0,1] *)
  dup : float;  (** probability the message is delivered twice *)
  extra_delay : float;  (** mean of an exponential extra latency *)
  jitter : float;
      (** uniform extra latency in [0, jitter] — what reorders
          messages relative to their send order *)
  capacity : int;
      (** messages admitted per directed pair per unit of simulation
          time; 0 (the default) means unlimited. Beyond the budget the
          fabric {e sheds} — a deterministic overload verdict distinct
          from loss, which the sender answers with retry/backoff
          rather than a session reset (DESIGN.md §13). [Keepalive]
          sends get twice the budget, so keepalives are never shed
          before bulk traffic. *)
}

val reliable : policy
(** No loss, no duplication, no extra delay — the idealized fabric
    every protocol ran on before this module existed. *)

val lossy :
  ?dup:float -> ?extra_delay:float -> ?jitter:float -> ?capacity:int -> float -> policy
(** [lossy p] drops each transmission with probability [p].
    @raise Invalid_argument when [p] is outside [0,1] or [capacity] is
    negative. *)

val limited : int -> policy
(** [limited c] is {!reliable} with [capacity = c]: the pure-overload
    fabric the shed/backoff tests use.
    @raise Invalid_argument when [c] is not positive. *)

type t

val create : ?policy:(src:int -> dst:int -> policy) -> ?fifo:bool -> int64 -> t
(** A fault fabric seeded with the given value. [policy] picks the
    per-link behaviour (default: {!reliable} everywhere). [fifo]
    (default false) makes each directed channel order-preserving — a
    later message never overtakes an earlier one — which is the TCP
    semantics {!Bgpdyn} sessions assume; leave it off for datagram
    protocols like {!Lsproto} whose sequence numbers absorb
    reordering. *)

val set_policy : t -> (src:int -> dst:int -> policy) -> unit
(** Swap the per-link policy — how an experiment ceases injection
    ("after faults stop, the protocol reconverges") without building a
    second fabric. *)

type outcome =
  | Sent  (** put on the wire (the receiver may still crash in flight) *)
  | Lost  (** killed by the loss draw *)
  | Cut  (** the link was down at send time *)
  | Dead  (** an endpoint was down at send time *)
  | Shed
      (** refused by the capacity budget — overload, not failure: the
          channel is alive and the sender should retry with backoff *)

type prio =
  | Bulk  (** updates, LSAs — the first traffic shed under overload *)
  | Keepalive
      (** session liveness (keepalives, acks): twice the capacity
          budget, so never shed before bulk traffic *)

val send :
  ?prio:prio ->
  t ->
  Engine.t ->
  src:int ->
  dst:int ->
  delay:float ->
  (Engine.t -> unit) ->
  outcome
(** The fault-aware replacement for [Engine.schedule]: deliver
    [action] after [delay] plus any policy-drawn extra latency, unless
    the fabric decides otherwise. A message is dropped when either
    endpoint is down or the link is down at send time, when the loss
    draw fails, or when the receiver has crashed by delivery time;
    it is shed ([prio]-aware, default [Bulk]) when the policy's
    capacity budget for the directed pair's current unit-time window
    is spent. Link state is only checked at send time — a message
    already on the wire survives a flap. All draws happen at send
    time; the returned outcome is the send-time verdict, which is
    what lets a sender model TCP-style transport-failure detection. *)

(** {2 Link flaps} *)

val link_up : t -> int -> int -> bool
val set_link_down : t -> int -> int -> unit
(** Links are undirected: downing (a,b) also downs (b,a). *)

val set_link_up : t -> int -> int -> unit

val flap_link : t -> Engine.t -> a:int -> b:int -> down_at:float -> up_at:float -> unit
(** Script one down/up cycle at absolute engine times.
    @raise Invalid_argument when [up_at < down_at]. *)

val schedule_flap_train :
  t ->
  Engine.t ->
  a:int ->
  b:int ->
  start:float ->
  cycles:int ->
  period:float ->
  down_for:float ->
  unit
(** Script [cycles] down/up cycles: the link goes down at
    [start + i * period] and comes back [down_for] later, for
    [i = 0 .. cycles - 1] — the flapping-interface pattern the
    incident drills (E32, the flapping-provider drill) replay.
    [flap_link] is the one-cycle special case.
    @raise Invalid_argument when [cycles <= 0] or [down_for] is
    outside [(0, period]]. *)

(** {2 Crashes} *)

val node_up : t -> int -> bool

val on_crash : t -> (Engine.t -> int -> unit) -> unit
(** Register a handler run when a node crashes — this is where a
    protocol wipes the victim's soft state. *)

val on_restart : t -> (Engine.t -> int -> unit) -> unit
(** Register a handler run when a node restarts — re-initialization
    and re-advertisement. *)

val crash : t -> Engine.t -> int -> unit
(** Take the node down now and run the crash handlers. No-op when
    already down. *)

val restart : t -> Engine.t -> int -> unit
(** Bring the node back now and run the restart handlers. No-op when
    already up. *)

val schedule_outage : t -> Engine.t -> node:int -> at:float -> duration:float -> unit
(** Script one crash at [at] and the restart at [at +. duration].
    @raise Invalid_argument on negative durations. *)

(** {2 Accounting} *)

type stats = {
  sent : int;  (** messages accepted by the fabric *)
  delivered : int;  (** actions actually executed (duplicates included) *)
  lost : int;  (** dropped by the loss draw *)
  cut : int;  (** dropped because the link was down at send time *)
  dead : int;  (** dropped because an endpoint was down *)
  shed : int;  (** refused by the capacity budget (not counted in [sent]) *)
  duplicated : int;
  reordered : int;
      (** deliveries scheduled to land strictly before a message
          already on the same directed channel — the jitter-induced
          overtakings a [~fifo:true] channel clamps away (always 0
          there; the test-suite holds it to that by property) *)
}

val stats : t -> stats
