type handle = { mutable alive : bool }

type event = { time : float; seq : int; action : t -> unit; live : handle }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable heap : event array;
  mutable size : int;
  mutable cancelled : int;  (* cancelled events still sitting in the heap *)
}

let create () =
  (* the padding event's handle is fresh per engine, so no module-level
     mutable sentinel is shared between instances *)
  let pad = { time = 0.0; seq = 0; action = (fun _ -> ()); live = { alive = true } } in
  {
    clock = 0.0;
    next_seq = 0;
    heap = Array.make 16 pad;
    size = 0;
    cancelled = 0;
  }

let now t = t.clock
let pending t = t.size - t.cancelled

let earlier a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let heap = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- ev;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && earlier t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(p);
    t.heap.(p) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.size && earlier t.heap.(l) t.heap.(!m) then m := l;
      if r < t.size && earlier t.heap.(r) t.heap.(!m) then m := r;
      if !m <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!m);
        t.heap.(!m) <- tmp;
        i := !m
      end
      else continue := false
    done;
    Some top
  end

(* Drop cancelled events from the top of the heap without touching the
   clock, so run's ~until check and step always see a live head. *)
let rec purge t =
  if t.size > 0 && not t.heap.(0).live.alive then begin
    ignore (pop t);
    t.cancelled <- t.cancelled - 1;
    purge t
  end

let schedule_handle_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let live = { alive = true } in
  let ev = { time; seq = t.next_seq; action; live } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  live

let schedule_at t ~time action = ignore (schedule_handle_at t ~time action)

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let timer t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.timer: negative delay";
  schedule_handle_at t ~time:(t.clock +. delay) action

let cancel t handle =
  if handle.alive then begin
    handle.alive <- false;
    t.cancelled <- t.cancelled + 1;
    purge t
  end

let live handle = handle.alive

let step t =
  purge t;
  match pop t with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      (* retire the handle before running: the event is no longer
         queued, so a cancel from inside its own action is a no-op *)
      ev.live.alive <- false;
      ev.action t;
      true

let run ?until t =
  let rec go count =
    purge t;
    match until with
    | Some limit when t.size > 0 && t.heap.(0).time > limit -> count
    | _ -> if step t then go (count + 1) else count
  in
  go 0
