type event = { time : float; seq : int; action : t -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable heap : event array;
  mutable size : int;
}

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    heap = Array.make 16 { time = 0.0; seq = 0; action = (fun _ -> ()) };
    size = 0;
  }

let now t = t.clock
let pending t = t.size

let earlier a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let heap = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- ev;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && earlier t.heap.(!i) t.heap.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(p);
    t.heap.(p) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.size && earlier t.heap.(l) t.heap.(!m) then m := l;
      if r < t.size && earlier t.heap.(r) t.heap.(!m) then m := r;
      if !m <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!m);
        t.heap.(!m) <- tmp;
        i := !m
      end
      else continue := false
    done;
    Some top
  end

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let step t =
  match pop t with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      ev.action t;
      true

let run ?until t =
  let rec go count =
    match until with
    | Some limit when t.size > 0 && t.heap.(0).time > limit -> count
    | _ -> if step t then go (count + 1) else count
  in
  go 0
