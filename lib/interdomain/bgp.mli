(** Inter-domain path-vector routing (BGP) with Gao–Rexford policies —
    the unmodified protocol that, per §3.2, carries the new
    generation's anycast prefix as a policy matter.

    Domains originate prefixes and exchange per-prefix routes with
    their neighbors under the standard policy discipline: prefer
    customer routes over peer routes over provider routes, export
    customer routes to everyone but peer/provider routes only to
    customers. Under these rules the protocol provably converges; we
    iterate synchronous rounds to the unique stable state.

    The paper's two inter-domain anycast options map onto this module:

    - {e Option 1} (non-aggregatable global anycast routes): several
      domains {!originate} the same anycast prefix; per-domain
      willingness to carry such prefixes is the {!config}'s
      [propagate] filter ("a change in policy ... on the part of an
      ISP").
    - {e Option 2} (default-ISP rooted): only the default ISP's /16
      covers the anycast address, so unmodified BGP already delivers
      toward the default domain; participants may additionally place
      scope-limited advertisements at chosen neighbors with
      {!advertise_scoped} ("Q can peer with Y to advertise its path for
      the anycast address"). *)

type route = {
  prefix : Netcore.Prefix.t;
  as_path : int list;
      (** [head] is the owning domain itself, [last] the originator *)
  pref : int;  (** local preference; origination beats any learned route *)
  no_export : bool;  (** scoped advertisement: never re-exported *)
  scope : int option;
      (** remaining export radius in AS hops: [Some 0] is not exported
          further, [None] is unlimited. Radius-limited origination is
          how GIA-style "search for nearby members" advertisements are
          modelled. *)
}

type config = {
  propagate : int -> Netcore.Prefix.t -> bool;
      (** [propagate d p]: is domain [d] willing to import/carry prefix
          [p]? Default: always true. Option-1 experiments restrict
          non-participants here. *)
}

type t
(** Mutable protocol state over one {!Topology.Internet.t}. *)

val default_config : config
val create : ?config:config -> Topology.Internet.t -> t

val originate : t -> domain:int -> Netcore.Prefix.t -> unit
(** Domain starts originating the prefix. Multiple domains may
    originate the same prefix (anycast Option 1). Takes effect on the
    next {!converge}. *)

val withdraw_origin : t -> domain:int -> Netcore.Prefix.t -> unit

val originate_limited : t -> domain:int -> radius:int -> Netcore.Prefix.t -> unit
(** Originate with a bounded export radius: the route reaches domains
    at most [radius] AS hops away (subject to the usual policy rules)
    and is silently dropped beyond. [radius = 0] keeps it local. Used
    by the GIA-style anycast deployment, where members make themselves
    discoverable only within a search radius.
    @raise Invalid_argument on negative radius. *)

val withdraw_limited : t -> domain:int -> Netcore.Prefix.t -> unit

val originate_all_domain_prefixes : t -> unit
(** Every domain originates its own /16 — the normal unicast
    substrate. *)

val advertise_scoped : t -> from_:int -> to_:int -> Netcore.Prefix.t -> unit
(** One-hop advertisement of [prefix] from a participant to a directly
    linked neighbor; the neighbor installs it (subject to preference)
    but never re-exports it.
    @raise Invalid_argument when the domains are not linked. *)

val withdraw_scoped : t -> from_:int -> to_:int -> Netcore.Prefix.t -> unit

val step : t -> bool
(** One synchronous exchange round; true when any RIB changed. *)

val converge : t -> int
(** Iterate to the stable state; returns rounds executed. *)

val route_to : t -> domain:int -> Netcore.Prefix.t -> route option
(** The chosen route of a domain for exactly this prefix ([None] when
    it has no route). *)

val lookup : t -> domain:int -> Netcore.Ipv4.t -> route option
(** Longest-prefix-match over the domain's RIB. *)

val next_hop_domain : route -> int option
(** The neighbor the route goes through; [None] for self-originated
    routes. *)

val as_path_length : route -> int

val rib_size : t -> domain:int -> int
(** Number of prefixes in the domain's RIB — the routing-state metric
    of experiment E5. *)

val rib : t -> domain:int -> route list
val internet : t -> Topology.Internet.t

val egress_link : t -> domain:int -> Netcore.Prefix.t -> Topology.Internet.interlink option
(** The inter-domain link the domain's chosen route for the covering
    prefix uses (deterministically the lowest-numbered link to the
    next-hop domain); [None] for local or unreachable prefixes. *)

val domain_path : t -> src:int -> Netcore.Ipv4.t -> int list option
(** The AS-level path from [src] to the address's best-matching prefix:
    [src] first, originator last. [None] when unreachable. *)
