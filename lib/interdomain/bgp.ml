module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Prefix = Netcore.Prefix
module Lpm = Netcore.Lpm

type route = {
  prefix : Prefix.t;
  as_path : int list;
  pref : int;
  no_export : bool;
  scope : int option;
}

type config = { propagate : int -> Prefix.t -> bool }

let default_config = { propagate = (fun _ _ -> true) }
let origin_pref = 4 (* beats customer (3), peer (2), provider (1) *)

type t = {
  inet : Internet.t;
  config : config;
  mutable origins : (int * Prefix.t) list;
  mutable limited_origins : (int * Prefix.t * int) list;  (* domain, prefix, radius *)
  mutable scoped : (int * int * Prefix.t) list;  (* from, to, prefix *)
  ribs : route Lpm.t array;  (* per domain: chosen route per prefix *)
  neighbors : (int * Relationship.t) list array;
}

let internet t = t.inet

let create ?(config = default_config) inet =
  let n = Internet.num_domains inet in
  {
    inet;
    config;
    origins = [];
    limited_origins = [];
    scoped = [];
    ribs = Array.make n Lpm.empty;
    neighbors = Array.init n (fun d -> Internet.neighbor_domains inet d);
  }

let originate t ~domain prefix =
  if not (List.mem (domain, prefix) t.origins) then
    t.origins <- (domain, prefix) :: t.origins

let withdraw_origin t ~domain prefix =
  t.origins <-
    List.filter
      (fun (d, p) -> not (d = domain && Prefix.equal p prefix))
      t.origins

let originate_limited t ~domain ~radius prefix =
  if radius < 0 then invalid_arg "Bgp.originate_limited: negative radius";
  let entry = (domain, prefix, radius) in
  if not (List.mem entry t.limited_origins) then
    t.limited_origins <- entry :: t.limited_origins

let withdraw_limited t ~domain prefix =
  t.limited_origins <-
    List.filter
      (fun (d, p, _) -> not (d = domain && Prefix.equal p prefix))
      t.limited_origins

let originate_all_domain_prefixes t =
  for d = 0 to Internet.num_domains t.inet - 1 do
    originate t ~domain:d (Internet.domain t.inet d).prefix
  done

let linked t a b =
  List.exists (fun (nb, _) -> nb = b) t.neighbors.(a)

let advertise_scoped t ~from_ ~to_ prefix =
  if not (linked t from_ to_) then
    invalid_arg "Bgp.advertise_scoped: domains not directly linked";
  if not (List.mem (from_, to_, prefix) t.scoped) then
    t.scoped <- (from_, to_, prefix) :: t.scoped

let withdraw_scoped t ~from_ ~to_ prefix =
  t.scoped <-
    List.filter
      (fun (f, d, p) -> not (f = from_ && d = to_ && Prefix.equal p prefix))
      t.scoped

(* Deterministic total preference order; [a] better than [b] when
   [better a b] is true. *)
let better a b =
  if a.pref <> b.pref then a.pref > b.pref
  else
    let la = List.length a.as_path and lb = List.length b.as_path in
    if la <> lb then la < lb
    else a.as_path < b.as_path (* lexicographic: lower neighbor ids win *)

let route_eq a b =
  Prefix.equal a.prefix b.prefix
  && a.as_path = b.as_path && a.pref = b.pref
  && a.no_export = b.no_export && a.scope = b.scope

(* The role of the route at its owner, for export decisions: recovered
   from the stored preference. *)
let learned_role r =
  if r.pref >= origin_pref then Relationship.Customer (* originated: export freely *)
  else if r.pref = Relationship.(local_preference Customer) then Relationship.Customer
  else if r.pref = Relationship.(local_preference Peer) then Relationship.Peer
  else Relationship.Provider

let step t =
  let n = Internet.num_domains t.inet in
  let snapshot = Array.copy t.ribs in
  let changed = ref false in
  (* candidate accumulation per domain *)
  let candidates = Array.make n ([] : route list) in
  (* loop prevention happens at import: a domain rejects routes whose
     path already contains it — checked by callers before the self
     element is prepended *)
  let add_candidate d r =
    if t.config.propagate d r.prefix then candidates.(d) <- r :: candidates.(d)
  in
  (* 1. origination *)
  List.iter
    (fun (d, p) ->
      add_candidate d
        { prefix = p; as_path = [ d ]; pref = origin_pref; no_export = false; scope = None })
    t.origins;
  List.iter
    (fun (d, p, radius) ->
      add_candidate d
        {
          prefix = p;
          as_path = [ d ];
          pref = origin_pref;
          no_export = false;
          scope = Some radius;
        })
    t.limited_origins;
  (* 2. neighbor exports from the snapshot *)
  for d = 0 to n - 1 do
    List.iter
      (fun (nb, role_of_nb) ->
        (* role of d from nb's point of view governs nb's export *)
        let role_of_d = Relationship.invert role_of_nb in
        Lpm.iter
          (fun _p r ->
            let scope_allows = match r.scope with None -> true | Some s -> s > 0 in
            if (not r.no_export) && scope_allows && not (List.mem d r.as_path)
            then
              if Relationship.export_allowed ~learned_from:(learned_role r) ~to_:role_of_d
              then
                add_candidate d
                  {
                    prefix = r.prefix;
                    as_path = d :: r.as_path;
                    pref = Relationship.local_preference role_of_nb;
                    no_export = false;
                    scope = Option.map (fun s -> s - 1) r.scope;
                  })
          snapshot.(nb))
      t.neighbors.(d)
  done;
  (* 3. scoped (one-hop, no-export) advertisements *)
  List.iter
    (fun (from_, to_, p) ->
      match
        List.find_opt (fun (nb, _) -> nb = from_) t.neighbors.(to_)
      with
      | None -> ()
      | Some (_, role_of_from) ->
          (* the caller asserts the advertiser can deliver to the
             prefix (e.g. its own IGP anycast members); scoped routes
             are taken on faith, as real peering advertisements are *)
          add_candidate to_
            {
              prefix = p;
              as_path = [ to_; from_ ];
              pref = Relationship.local_preference role_of_from;
              no_export = true;
              scope = Some 0;
            })
    t.scoped;
  (* 4. selection *)
  for d = 0 to n - 1 do
    let best = Hashtbl.create 16 in
    List.iter
      (fun r ->
        match Hashtbl.find_opt best r.prefix with
        | Some cur when not (better r cur) -> ()
        | _ -> Hashtbl.replace best r.prefix r)
      candidates.(d);
    let rib = Hashtbl.fold (fun p r acc -> Lpm.add p r acc) best Lpm.empty in
    let same =
      Lpm.cardinal rib = Lpm.cardinal snapshot.(d)
      && Lpm.fold
           (fun p r acc ->
             acc
             &&
             match Lpm.find_exact p snapshot.(d) with
             | Some old -> route_eq old r
             | None -> false)
           rib true
    in
    if not same then begin
      changed := true;
      t.ribs.(d) <- rib
    end
  done;
  !changed

let converge t =
  let limit = (4 * Internet.num_domains t.inet) + 16 in
  let rec go rounds =
    if rounds >= limit then rounds else if step t then go (rounds + 1) else rounds
  in
  go 0

let route_to t ~domain prefix = Lpm.find_exact prefix t.ribs.(domain)
let lookup t ~domain addr = Option.map snd (Lpm.lookup addr t.ribs.(domain))

let next_hop_domain r =
  match r.as_path with
  | _ :: nb :: _ -> Some nb
  | [ _ ] | [] -> None

let as_path_length r = List.length r.as_path
let rib_size t ~domain = Lpm.cardinal t.ribs.(domain)
let rib t ~domain = List.map snd (Lpm.bindings t.ribs.(domain))

let egress_link t ~domain prefix =
  match Lpm.lookup (Prefix.network prefix) t.ribs.(domain) with
  | None -> None
  | Some (_, r) -> (
      match next_hop_domain r with
      | None -> None
      | Some nb ->
          Internet.interlinks_between t.inet domain nb
          |> List.sort (fun a b ->
                 compare
                   (a.Internet.a_router, a.Internet.b_router)
                   (b.Internet.a_router, b.Internet.b_router))
          |> function
          | [] -> None
          | l :: _ -> Some l)

let domain_path t ~src addr =
  match lookup t ~domain:src addr with
  | None -> None
  | Some r -> Some r.as_path
