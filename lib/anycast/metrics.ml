module Internet = Topology.Internet
module Forward = Simcore.Forward
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p = function
  | [] -> nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) rank))

let unicast_metric env ~endhost ~router =
  let dst = (Internet.router env.Forward.inet router).raddr in
  let probe = Packet.make_data ~src:Ipv4.any ~dst "metric-probe" in
  let trace = Forward.send_from_endhost env probe ~endhost in
  if Forward.delivered trace then Some (Forward.path_metric env trace) else None

let best_member service ~endhost =
  let env = Service.env service in
  List.fold_left
    (fun acc m ->
      match unicast_metric env ~endhost ~router:m with
      | None -> acc
      | Some d -> (
          match acc with
          | Some (_, bd) when bd <= d -> acc
          | _ -> Some (m, d)))
    None (Service.members service)

let actual service ~endhost =
  let env = Service.env service in
  let trace = Service.resolve_from_endhost service ~endhost in
  match trace.Forward.outcome with
  | Forward.Router_accepted r -> Some (r, Forward.path_metric env trace)
  | Forward.Endhost_accepted _ | Forward.Dropped _ -> None

let stretch service ~endhost =
  match actual service ~endhost with
  | None -> None
  | Some (_, got) -> (
      match best_member service ~endhost with
      | None -> None
      | Some (_, best) ->
          if Float.equal best 0.0 then Some 1.0 else Some (got /. best))

let all_endhosts service =
  let inet = (Service.env service).Forward.inet in
  List.init (Array.length inet.Internet.endhosts) Fun.id

let mean_stretch service =
  all_endhosts service
  |> List.filter_map (fun h -> stretch service ~endhost:h)
  |> mean

let delivery_rate service =
  let hs = all_endhosts service in
  let ok =
    List.length (List.filter_map (fun h -> actual service ~endhost:h) hs)
  in
  float_of_int ok /. float_of_int (max 1 (List.length hs))

let termination_share service ~domain =
  let inet = (Service.env service).Forward.inet in
  let delivered =
    all_endhosts service |> List.filter_map (fun h -> actual service ~endhost:h)
  in
  match delivered with
  | [] -> 0.0
  | _ ->
      let inside =
        List.filter
          (fun (m, _) -> (Internet.router inet m).rdomain = domain)
          delivered
      in
      float_of_int (List.length inside) /. float_of_int (List.length delivered)
