(** Measurement helpers for anycast redirection quality.

    "Stretch" compares the path an anycast packet actually takes with
    the best path to {e any} group member reachable by ordinary unicast
    forwarding — both measured on the policy-routed data plane, since
    the paper's notion of "closest" (§3.2) is "the network's measure of
    routing distance". *)

val unicast_metric : Simcore.Forward.env -> endhost:int -> router:int -> float option
(** Metric of the unicast path from an endhost to a router's address;
    [None] when undeliverable. *)

val best_member : Service.t -> endhost:int -> (int * float) option
(** The member with the cheapest unicast path from the endhost, with
    that metric. *)

val actual : Service.t -> endhost:int -> (int * float) option
(** The member the anycast service actually delivers to, with the
    metric of the path taken. *)

val stretch : Service.t -> endhost:int -> float option
(** [actual / best]; 1.0 when both are zero (the access router is a
    member); [None] when anycast delivery fails. *)

val mean_stretch : Service.t -> float
(** Mean stretch over all endhosts with successful delivery; [nan]
    when none succeed. *)

val delivery_rate : Service.t -> float
(** Fraction of endhosts whose anycast probes get delivered. *)

val termination_share : Service.t -> domain:int -> float
(** Fraction of successfully delivered probes that terminate at a
    member inside the given domain (the default-provider load of
    Option 2, experiment E2). *)

(** {1 Small statistics helpers} *)

val mean : float list -> float
(** [nan] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 1\]] (nearest-rank); [nan] on
    the empty list. *)
