(** Per-domain willingness to carry anycast prefixes.

    Option 1 of the paper (§3.2) requires non-participant ISPs to "propagate a
    small number of non-aggregatable anycast addresses in [their]
    inter-domain routing protocol" — a policy change, not a mechanism
    change. This table models that policy knob per (domain, prefix);
    the default is willingness. Plug it into BGP via {!bgp_config}. *)

type t

val create : unit -> t
(** Everyone propagates everything. *)

val set_propagates : t -> domain:int -> prefix:Netcore.Prefix.t -> bool -> unit
(** Record a domain's willingness for one prefix. *)

val refuse_all_nonroutable : t -> domains:int list -> unit
(** The listed domains refuse every prefix longer than the global
    routability limit (/22) — the "no policy change anywhere" baseline
    that motivates Option 2. *)

val propagates : t -> domain:int -> prefix:Netcore.Prefix.t -> bool

val bgp_config : t -> Interdomain.Bgp.config
(** A BGP import filter consulting this table. The table is mutable and
    shared: later [set_propagates] calls affect subsequent BGP
    convergence, which is how experiments flip policies mid-run. *)
